//! Exhaustive interleaving model checking (`csalt-audit modelcheck`,
//! properties `M001`–`M005`).
//!
//! A mini-loom: the SPSC ring ([`csalt-pipeline`]'s `spsc.rs`) and the
//! `ThreadBudget` ledger (`budget.rs`) are re-expressed as small state
//! machines over an abstract memory, and a DFS enumerates **every**
//! schedule of bounded configurations (ring capacity 2–4, 4–8 ops),
//! checking safety properties in each reachable state:
//!
//! | property | claim |
//! |----------|-------|
//! | M001 | ring is FIFO: no lost, duplicated, or reordered record |
//! | M002 | no read of an unpublished slot (release/acquire visibility) |
//! | M003 | ring never holds more than `capacity` records |
//! | M004 | budget ledger never grants more than capacity |
//! | M005 | budget ledger drains back to zero |
//!
//! # The memory model
//!
//! Plain interleaving (sequential consistency) would trivialize the
//! orderings — every store would be instantly visible, so a `Relaxed`
//! publish would "work". Instead each atomic location keeps its full
//! **write history** and each thread a **visibility frontier** per
//! location (the oldest write it may still read — the abstract form of
//! a store buffer that has not yet drained). A load nondeterministically
//! reads *any* write at or after the thread's frontier; the DFS
//! branches over all of them, so stale reads are explored exhaustively.
//! Synchronization is view propagation: a `Release` store snapshots the
//! writer's frontier into the write; an `Acquire` load that reads a
//! `Release` write joins that snapshot into the reader's frontier.
//! RMW operations (CAS, `fetch_sub`) always read the newest write —
//! that is exactly the atomicity the real instructions guarantee.
//!
//! This catches the bugs that matter here: publishing the tail with
//! `Relaxed` (or storing it before the slot words) lets the consumer
//! acquire the new tail yet still read the slot's previous contents —
//! M002 fires. It deliberately does *not* model same-thread statement
//! reordering, so a consumer-side `head` publish weakened to `Relaxed`
//! is invisible to it (the hazard there is compiler reordering of the
//! consumer's slot reads, which only `srclint`'s S008 rule guards).
//!
//! Each built-in mutation (a deliberately broken variant) must make the
//! checker report a violation — the checker proves the algorithms *and*
//! the mutations prove the checker.

use serde::Serialize;
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// Sentinel for a slot nobody has written yet.
pub const POISON: u64 = u64::MAX;

/// Registry entries for `--list-rules`.
pub fn model_properties() -> &'static [crate::Rule] {
    &[
        crate::Rule {
            code: "M001",
            name: "spsc-fifo",
            summary: "ring delivers every record exactly once, in order",
        },
        crate::Rule {
            code: "M002",
            name: "spsc-publish",
            summary: "no schedule lets the consumer read an unpublished slot",
        },
        crate::Rule {
            code: "M003",
            name: "spsc-bounded",
            summary: "ring never holds more records than its capacity",
        },
        crate::Rule {
            code: "M004",
            name: "budget-cap",
            summary: "ThreadBudget never grants more than capacity, any schedule",
        },
        crate::Rule {
            code: "M005",
            name: "budget-drain",
            summary: "ThreadBudget drains back to zero when all holders release",
        },
    ]
}

// ---------------------------------------------------------------------
// Memory: write histories + per-thread visibility frontiers.
// ---------------------------------------------------------------------

/// Memory orderings the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Mo {
    /// No view propagation.
    Relaxed,
    /// Loads join the view attached to the write they read.
    Acquire,
    /// Stores attach the writer's current view.
    Release,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Write {
    value: u64,
    /// The writer's frontier at store time, present iff Release.
    view: Option<Vec<u32>>,
}

/// Abstract shared memory for a fixed set of atomic locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Memory {
    locs: Vec<Vec<Write>>,
    /// `frontier[t][l]`: index of the oldest write of location `l`
    /// thread `t` may still read.
    frontier: Vec<Vec<u32>>,
}

impl Memory {
    fn new(threads: usize, init: &[u64]) -> Self {
        Memory {
            locs: init
                .iter()
                .map(|&v| {
                    vec![Write {
                        value: v,
                        view: None,
                    }]
                })
                .collect(),
            frontier: vec![vec![0; init.len()]; threads],
        }
    }

    /// Number of writes thread `t` could read from location `l` (the
    /// DFS branches over exactly this many choices).
    fn candidates(&self, t: usize, l: usize) -> usize {
        self.locs[l].len() - self.frontier[t][l] as usize
    }

    /// Reads the `choice`-th visible write (0 = the thread's frontier,
    /// stalest permitted; `candidates-1` = the newest).
    fn load(&mut self, t: usize, l: usize, ord: Mo, choice: usize) -> u64 {
        let idx = self.frontier[t][l] as usize + choice;
        let value = self.locs[l][idx].value;
        self.frontier[t][l] = idx as u32;
        if ord == Mo::Acquire {
            // Split borrow: clone the view out before mutating.
            if let Some(view) = self.locs[l][idx].view.clone() {
                self.join(t, &view);
            }
        }
        value
    }

    fn store(&mut self, t: usize, l: usize, ord: Mo, value: u64) {
        let idx = self.locs[l].len() as u32;
        self.frontier[t][l] = idx;
        let view = (ord == Mo::Release).then(|| self.frontier[t].clone());
        self.locs[l].push(Write { value, view });
    }

    /// RMW read half: always the newest write (hardware atomicity).
    fn rmw_read(&mut self, t: usize, l: usize, ord: Mo) -> u64 {
        let idx = self.locs[l].len() - 1;
        self.frontier[t][l] = idx as u32;
        let value = self.locs[l][idx].value;
        if ord == Mo::Acquire {
            if let Some(view) = self.locs[l][idx].view.clone() {
                self.join(t, &view);
            }
        }
        value
    }

    /// Newest value of `l` (the "physical truth" invariants check).
    fn latest(&self, l: usize) -> u64 {
        self.locs[l].last().map_or(0, |w| w.value)
    }

    fn join(&mut self, t: usize, view: &[u32]) {
        for (f, &v) in self.frontier[t].iter_mut().zip(view) {
            *f = (*f).max(v);
        }
    }
}

// ---------------------------------------------------------------------
// The model trait and the DFS explorer.
// ---------------------------------------------------------------------

type Verdict = Result<(), (&'static str, String)>;

/// A bounded concurrent system the explorer can enumerate.
pub trait Model: Clone + Eq + Hash {
    /// Number of threads.
    fn threads(&self) -> usize;
    /// Whether thread `tid` has finished its program.
    fn done(&self, tid: usize) -> bool;
    /// Nondeterministic outcomes of `tid`'s next step (≥ 1 when not
    /// done; loads branch over their visible writes).
    fn choices(&self, tid: usize) -> usize;
    /// Executes one step (exactly one shared-memory operation plus the
    /// local computation around it).
    fn step(&mut self, tid: usize, choice: usize) -> Verdict;
    /// Safety invariant, checked after every step.
    fn check_now(&self) -> Verdict;
    /// Terminal assertion, checked when every thread is done.
    fn check_done(&self) -> Verdict;
    /// One-letter thread labels for schedule traces.
    fn thread_label(&self, tid: usize) -> String;
}

/// A counterexample: which property failed, how, and the schedule.
#[derive(Debug, Clone, Serialize)]
pub struct ModelViolation {
    /// Property code (`M00x`).
    pub property: &'static str,
    /// What went wrong.
    pub message: String,
    /// The interleaving that produced it, as `label.choice` steps.
    pub schedule: String,
}

/// Exploration statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Exploration {
    /// Distinct states reached.
    pub states: u64,
    /// Transitions executed (steps, counting re-derivations).
    pub transitions: u64,
    /// Distinct terminal states (complete interleaving outcomes).
    pub terminals: u64,
    /// First violation found, if any (DFS order — deterministic).
    pub violation: Option<ModelViolation>,
}

/// Exhaustively explores every schedule of `initial` by DFS with
/// visited-state deduplication. `max_states` is a runaway bound; an
/// exploration that exceeds it reports a synthetic violation rather
/// than silently truncating coverage.
pub fn explore<M: Model>(initial: M, max_states: u64) -> Exploration {
    let mut visited: HashSet<M> = HashSet::new();
    let mut out = Exploration {
        states: 0,
        transitions: 0,
        terminals: 0,
        violation: None,
    };
    let mut stack: Vec<(M, Vec<(u8, u8)>)> = vec![(initial, Vec::new())];
    while let Some((state, sched)) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        out.states += 1;
        if out.states > max_states {
            out.violation = Some(ModelViolation {
                property: "M000",
                message: format!("state space exceeded the {max_states}-state bound"),
                schedule: String::new(),
            });
            return out;
        }
        let all_done = (0..state.threads()).all(|t| state.done(t));
        if all_done {
            out.terminals += 1;
            if let Err((property, message)) = state.check_done() {
                out.violation = Some(ModelViolation {
                    property,
                    message,
                    schedule: render(&state, &sched),
                });
                return out;
            }
            continue;
        }
        for tid in 0..state.threads() {
            if state.done(tid) {
                continue;
            }
            for choice in 0..state.choices(tid) {
                let mut next = state.clone();
                out.transitions += 1;
                let mut sched2 = sched.clone();
                sched2.push((tid as u8, choice as u8));
                let verdict = next.step(tid, choice).and_then(|()| next.check_now());
                if let Err((property, message)) = verdict {
                    out.violation = Some(ModelViolation {
                        property,
                        message,
                        schedule: render(&next, &sched2),
                    });
                    return out;
                }
                stack.push((next, sched2));
            }
        }
    }
    out
}

fn render<M: Model>(state: &M, sched: &[(u8, u8)]) -> String {
    sched
        .iter()
        .map(|&(t, c)| {
            let label = state.thread_label(t as usize);
            if c == 0 {
                label
            } else {
                format!("{label}.{c}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------------------------------------------------------------------
// Model 1: the SPSC ring (mirrors crates/pipeline/src/spsc.rs).
// ---------------------------------------------------------------------

/// Orderings for each of the ring's six atomic accesses. The correct
/// assignment mirrors `spsc.rs`; mutations weaken one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct RingOrds {
    /// Producer's slot-word store.
    pub slot_store: Mo,
    /// Producer's publish of `tail`.
    pub tail_store: Mo,
    /// Consumer's refresh of `tail`.
    pub tail_load: Mo,
    /// Consumer's publish of `head`.
    pub head_store: Mo,
    /// Producer's refresh of `head`.
    pub head_load: Mo,
    /// Consumer's slot-word load.
    pub slot_load: Mo,
}

impl RingOrds {
    /// The orderings `spsc.rs` actually uses.
    #[must_use]
    pub fn correct() -> Self {
        RingOrds {
            slot_store: Mo::Relaxed,
            tail_store: Mo::Release,
            tail_load: Mo::Acquire,
            head_store: Mo::Release,
            head_load: Mo::Acquire,
            slot_load: Mo::Relaxed,
        }
    }
}

/// A bounded SPSC configuration to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct RingConfig {
    /// Ring capacity (power of two, 2–4 for tractable exploration).
    pub capacity: u64,
    /// Records the producer pushes and the consumer must pop (4–8).
    pub items: u64,
    /// Orderings under test.
    pub ords: RingOrds,
    /// Mutation: drop the producer's space check (overrun).
    pub skip_space_check: bool,
    /// Mutation: publish `tail` before writing the slot (program-order
    /// bug).
    pub publish_before_write: bool,
}

impl RingConfig {
    /// The correct ring at the given bounds.
    #[must_use]
    pub fn correct(capacity: u64, items: u64) -> Self {
        RingConfig {
            capacity,
            items,
            ords: RingOrds::correct(),
            skip_space_check: false,
            publish_before_write: false,
        }
    }
}

const TAIL: usize = 0;
const HEAD: usize = 1;
const SLOT0: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PPc {
    /// Check space, then either refresh `head` or write the slot.
    Ready,
    /// Slot written; publish `tail`.
    Publish,
    /// Mutated order: `tail` published; now write the slot.
    WriteAfter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CPc {
    /// Check emptiness, then either refresh `tail` or read the slot.
    Ready,
    /// Slot read and validated; publish `head`.
    Publish,
}

/// The two-thread SPSC model. Thread 0 = producer, 1 = consumer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingModel {
    cfg: RingConfig,
    mem: Memory,
    // Producer locals (free-running counters, as in spsc.rs).
    ppc: PPc,
    p_tail: u64,
    cached_head: u64,
    pushed: u64,
    // Consumer locals.
    cpc: CPc,
    c_head: u64,
    cached_tail: u64,
    popped: u64,
}

impl RingModel {
    /// Builds the initial state: empty ring, slots poisoned.
    #[must_use]
    pub fn new(cfg: RingConfig) -> Self {
        let mut init = vec![0u64, 0u64];
        init.extend(std::iter::repeat_n(POISON, cfg.capacity as usize));
        RingModel {
            cfg,
            mem: Memory::new(2, &init),
            ppc: PPc::Ready,
            p_tail: 0,
            cached_head: 0,
            pushed: 0,
            cpc: CPc::Ready,
            c_head: 0,
            cached_tail: 0,
            popped: 0,
        }
    }

    fn slot(&self, counter: u64) -> usize {
        SLOT0 + (counter & (self.cfg.capacity - 1)) as usize
    }

    fn p_full(&self) -> bool {
        !self.cfg.skip_space_check && self.p_tail - self.cached_head == self.cfg.capacity
    }
}

impl Model for RingModel {
    fn threads(&self) -> usize {
        2
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.ppc == PPc::Ready && self.pushed == self.cfg.items
        } else {
            self.cpc == CPc::Ready && self.popped == self.cfg.items
        }
    }

    fn choices(&self, tid: usize) -> usize {
        if tid == 0 {
            match self.ppc {
                PPc::Ready if self.p_full() => self.mem.candidates(0, HEAD),
                _ => 1,
            }
        } else {
            match self.cpc {
                CPc::Ready if self.cached_tail == self.c_head => self.mem.candidates(1, TAIL),
                CPc::Ready => self.mem.candidates(1, self.slot(self.c_head)),
                CPc::Publish => 1,
            }
        }
    }

    fn step(&mut self, tid: usize, choice: usize) -> Verdict {
        let ords = self.cfg.ords;
        if tid == 0 {
            match self.ppc {
                PPc::Ready => {
                    if self.p_full() {
                        self.cached_head = self.mem.load(0, HEAD, ords.head_load, choice);
                    } else if self.cfg.publish_before_write {
                        self.mem.store(0, TAIL, ords.tail_store, self.p_tail + 1);
                        self.ppc = PPc::WriteAfter;
                    } else {
                        let slot = self.slot(self.p_tail);
                        self.mem.store(0, slot, ords.slot_store, self.pushed + 1);
                        self.ppc = PPc::Publish;
                    }
                }
                PPc::Publish => {
                    self.p_tail += 1;
                    self.mem.store(0, TAIL, ords.tail_store, self.p_tail);
                    self.pushed += 1;
                    self.ppc = PPc::Ready;
                }
                PPc::WriteAfter => {
                    let slot = self.slot(self.p_tail);
                    self.mem.store(0, slot, ords.slot_store, self.pushed + 1);
                    self.p_tail += 1;
                    self.pushed += 1;
                    self.ppc = PPc::Ready;
                }
            }
        } else {
            match self.cpc {
                CPc::Ready => {
                    if self.cached_tail == self.c_head {
                        self.cached_tail = self.mem.load(1, TAIL, ords.tail_load, choice);
                    } else {
                        let slot = self.slot(self.c_head);
                        let v = self.mem.load(1, slot, ords.slot_load, choice);
                        let expect = self.popped + 1;
                        if v == POISON {
                            return Err((
                                "M002",
                                format!(
                                    "consumer read unpublished slot {} (expected record {expect})",
                                    slot - SLOT0
                                ),
                            ));
                        }
                        if v != expect {
                            return Err((
                                "M001",
                                format!(
                                    "consumer popped record {v}, expected {expect} (FIFO broken)"
                                ),
                            ));
                        }
                        self.cpc = CPc::Publish;
                    }
                }
                CPc::Publish => {
                    self.c_head += 1;
                    self.mem.store(1, HEAD, ords.head_store, self.c_head);
                    self.popped += 1;
                    self.cpc = CPc::Ready;
                }
            }
        }
        Ok(())
    }

    fn check_now(&self) -> Verdict {
        let occupancy = self.mem.latest(TAIL).saturating_sub(self.mem.latest(HEAD));
        if occupancy > self.cfg.capacity {
            return Err((
                "M003",
                format!(
                    "ring holds {occupancy} records but capacity is {} (producer overran \
                     unconsumed slots)",
                    self.cfg.capacity
                ),
            ));
        }
        Ok(())
    }

    fn check_done(&self) -> Verdict {
        if self.popped != self.cfg.items {
            return Err((
                "M001",
                format!(
                    "terminal state popped {} of {} records",
                    self.popped, self.cfg.items
                ),
            ));
        }
        if self.mem.latest(TAIL) != self.cfg.items || self.mem.latest(HEAD) != self.cfg.items {
            return Err((
                "M001",
                format!(
                    "terminal indices tail={} head={} expected {}",
                    self.mem.latest(TAIL),
                    self.mem.latest(HEAD),
                    self.cfg.items
                ),
            ));
        }
        Ok(())
    }

    fn thread_label(&self, tid: usize) -> String {
        if tid == 0 { "P" } else { "C" }.to_string()
    }
}

// ---------------------------------------------------------------------
// Model 2: the ThreadBudget ledger (mirrors crates/pipeline/src/budget.rs).
// ---------------------------------------------------------------------

/// A bounded `ThreadBudget` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct BudgetConfig {
    /// Ledger capacity.
    pub capacity: u64,
    /// Threads hammering reserve/release.
    pub threads: u64,
    /// Threads ask for this many units per round.
    pub want: u64,
    /// reserve → hold → release rounds per thread.
    pub rounds: u64,
    /// Mutation: replace the CAS with a plain load+store (lost-update
    /// bug).
    pub blind_store: bool,
}

impl BudgetConfig {
    /// The correct ledger at the given bounds.
    #[must_use]
    pub fn correct(capacity: u64, threads: u64, want: u64, rounds: u64) -> Self {
        BudgetConfig {
            capacity,
            threads,
            want,
            rounds,
            blind_store: false,
        }
    }
}

const USED: usize = 0;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BPc {
    /// Load `used` and size a grant.
    Load,
    /// Try to commit the grant (CAS, or the mutated blind store).
    Commit { expected: u64, grant: u64 },
    /// Holding; release via `fetch_sub`.
    Release,
}

/// N threads doing reserve/release rounds against one atomic ledger.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BudgetModel {
    cfg: BudgetConfig,
    mem: Memory,
    pc: Vec<BPc>,
    granted: Vec<u64>,
    rounds_done: Vec<u64>,
}

impl BudgetModel {
    /// Builds the initial state: ledger empty, nobody holding.
    #[must_use]
    pub fn new(cfg: BudgetConfig) -> Self {
        let threads = cfg.threads as usize;
        BudgetModel {
            cfg,
            mem: Memory::new(threads, &[0]),
            pc: vec![BPc::Load; threads],
            granted: vec![0; threads],
            rounds_done: vec![0; threads],
        }
    }

    /// Grant sizing, as in `ThreadBudget::reserve_at_least` with no
    /// forced minimum.
    fn size_grant(&self, used: u64) -> u64 {
        self.cfg.want.min(self.cfg.capacity.saturating_sub(used))
    }
}

impl Model for BudgetModel {
    fn threads(&self) -> usize {
        self.cfg.threads as usize
    }

    fn done(&self, tid: usize) -> bool {
        self.pc[tid] == BPc::Load && self.rounds_done[tid] == self.cfg.rounds
    }

    fn choices(&self, tid: usize) -> usize {
        match self.pc[tid] {
            BPc::Load => self.mem.candidates(tid, USED),
            _ => 1,
        }
    }

    fn step(&mut self, tid: usize, choice: usize) -> Verdict {
        match self.pc[tid] {
            BPc::Load => {
                let used = self.mem.load(tid, USED, Mo::Relaxed, choice);
                let grant = self.size_grant(used);
                if grant == 0 {
                    // Zero grant: the reservation is empty; the round
                    // completes without touching the ledger again.
                    self.rounds_done[tid] += 1;
                } else {
                    self.pc[tid] = BPc::Commit {
                        expected: used,
                        grant,
                    };
                }
            }
            BPc::Commit { expected, grant } => {
                if self.cfg.blind_store {
                    // The lost-update mutation: no atomicity.
                    self.mem.store(tid, USED, Mo::Relaxed, expected + grant);
                    self.granted[tid] = grant;
                    self.pc[tid] = BPc::Release;
                } else {
                    let current = self.mem.rmw_read(tid, USED, Mo::Relaxed);
                    if current == expected {
                        self.mem.store(tid, USED, Mo::Relaxed, current + grant);
                        self.granted[tid] = grant;
                        self.pc[tid] = BPc::Release;
                    } else {
                        // CAS failure: retry with the observed value,
                        // exactly like the compare_exchange_weak loop.
                        let regrant = self.size_grant(current);
                        if regrant == 0 {
                            self.rounds_done[tid] += 1;
                            self.pc[tid] = BPc::Load;
                        } else {
                            self.pc[tid] = BPc::Commit {
                                expected: current,
                                grant: regrant,
                            };
                        }
                    }
                }
            }
            BPc::Release => {
                let current = self.mem.rmw_read(tid, USED, Mo::Relaxed);
                self.mem.store(
                    tid,
                    USED,
                    Mo::Relaxed,
                    current.saturating_sub(self.granted[tid]),
                );
                self.granted[tid] = 0;
                self.rounds_done[tid] += 1;
                self.pc[tid] = BPc::Load;
            }
        }
        Ok(())
    }

    fn check_now(&self) -> Verdict {
        let outstanding: u64 = self.granted.iter().sum();
        if outstanding > self.cfg.capacity {
            return Err((
                "M004",
                format!(
                    "{outstanding} units granted simultaneously, capacity {}",
                    self.cfg.capacity
                ),
            ));
        }
        Ok(())
    }

    fn check_done(&self) -> Verdict {
        let used = self.mem.latest(USED);
        if used != 0 {
            return Err((
                "M005",
                format!("ledger reads {used} after every reservation was released"),
            ));
        }
        Ok(())
    }

    fn thread_label(&self, tid: usize) -> String {
        format!("T{tid}")
    }
}

// ---------------------------------------------------------------------
// The suite the CLI runs.
// ---------------------------------------------------------------------

/// One exploration's outcome in the report.
#[derive(Debug, Clone, Serialize)]
pub struct CheckResult {
    /// Human name of the configuration.
    pub name: String,
    /// Whether this configuration is a deliberate mutation.
    pub mutation: bool,
    /// Distinct states explored.
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Distinct terminal states.
    pub terminals: u64,
    /// Counterexample, if one was found.
    pub violation: Option<ModelViolation>,
    /// Whether the outcome matches expectation (correct models verify,
    /// mutations produce their expected violation).
    pub ok: bool,
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} states / {} transitions / {} terminals",
            if self.ok { "ok  " } else { "FAIL" },
            self.name,
            self.states,
            self.transitions,
            self.terminals
        )?;
        if let Some(v) = &self.violation {
            write!(
                f,
                " — {} {} [schedule: {}]",
                v.property, v.message, v.schedule
            )?;
        }
        Ok(())
    }
}

/// The full modelcheck report.
#[derive(Debug, Clone, Serialize)]
pub struct ModelcheckReport {
    /// JSON schema version.
    pub version: u32,
    /// Totals across every configuration.
    pub states: u64,
    /// Total transitions.
    pub transitions: u64,
    /// Total distinct interleaving outcomes.
    pub terminals: u64,
    /// Per-configuration results.
    pub checks: Vec<CheckResult>,
}

impl ModelcheckReport {
    /// Whether every configuration behaved as expected.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Runaway bound per exploration; the full suite stays far below it.
const MAX_STATES: u64 = 20_000_000;

fn run_one<M: Model>(name: &str, mutation: Option<&[&str]>, model: M) -> CheckResult {
    let e = explore(model, MAX_STATES);
    let ok = match (&e.violation, mutation) {
        (None, None) => true,
        (Some(v), Some(expected)) => expected.contains(&v.property),
        _ => false,
    };
    CheckResult {
        name: name.to_string(),
        mutation: mutation.is_some(),
        states: e.states,
        transitions: e.transitions,
        terminals: e.terminals,
        violation: e.violation,
        ok,
    }
}

/// Runs the bounded verification suite: correct ring and budget models
/// over the (capacity × ops) grid, then every mutation, each of which
/// must produce its expected counterexample.
#[must_use]
pub fn run_suite() -> ModelcheckReport {
    let mut checks = Vec::new();

    // Correct models: must verify with zero violations.
    for (cap, items) in [(2, 4), (2, 6), (2, 8), (4, 4), (4, 6)] {
        checks.push(run_one(
            &format!("spsc capacity={cap} items={items}"),
            None,
            RingModel::new(RingConfig::correct(cap, items)),
        ));
    }
    for (cap, threads, want, rounds) in [(1, 2, 1, 2), (2, 2, 2, 2), (2, 3, 1, 2), (3, 2, 2, 3)] {
        checks.push(run_one(
            &format!("budget capacity={cap} threads={threads} want={want} rounds={rounds}"),
            None,
            BudgetModel::new(BudgetConfig::correct(cap, threads, want, rounds)),
        ));
    }

    // Mutations: the checker must catch each one.
    let mut relaxed_tail = RingConfig::correct(2, 4);
    relaxed_tail.ords.tail_store = Mo::Relaxed;
    checks.push(run_one(
        "spsc mutation: tail published Relaxed",
        Some(&["M002"]),
        RingModel::new(relaxed_tail),
    ));

    let mut publish_first = RingConfig::correct(2, 4);
    publish_first.publish_before_write = true;
    checks.push(run_one(
        "spsc mutation: tail published before slot write",
        Some(&["M002"]),
        RingModel::new(publish_first),
    ));

    let mut no_space = RingConfig::correct(2, 4);
    no_space.skip_space_check = true;
    checks.push(run_one(
        "spsc mutation: space check skipped",
        Some(&["M003", "M001"]),
        RingModel::new(no_space),
    ));

    let mut blind = BudgetConfig::correct(2, 2, 2, 2);
    blind.blind_store = true;
    checks.push(run_one(
        "budget mutation: CAS replaced by load+store",
        Some(&["M004", "M005"]),
        BudgetModel::new(blind),
    ));

    ModelcheckReport {
        version: crate::SCHEMA_VERSION,
        states: checks.iter().map(|c| c.states).sum(),
        transitions: checks.iter().map(|c| c.transitions).sum(),
        terminals: checks.iter().map(|c| c.terminals).sum(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_ring_verifies_smallest_config() {
        let e = explore(RingModel::new(RingConfig::correct(2, 4)), MAX_STATES);
        assert!(e.violation.is_none(), "{:?}", e.violation);
        assert!(
            e.states > 100,
            "suspiciously small exploration: {}",
            e.states
        );
        assert!(e.terminals >= 1);
    }

    #[test]
    fn relaxed_tail_publish_is_caught() {
        let mut cfg = RingConfig::correct(2, 2);
        cfg.ords.tail_store = Mo::Relaxed;
        let e = explore(RingModel::new(cfg), MAX_STATES);
        let v = e.violation.expect("Relaxed publish must be caught");
        assert_eq!(v.property, "M002", "{v:?}");
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn relaxed_tail_load_is_caught() {
        let mut cfg = RingConfig::correct(2, 2);
        cfg.ords.tail_load = Mo::Relaxed;
        let e = explore(RingModel::new(cfg), MAX_STATES);
        let v = e.violation.expect("Relaxed acquire side must be caught");
        assert_eq!(v.property, "M002", "{v:?}");
    }

    #[test]
    fn publish_before_write_is_caught() {
        let mut cfg = RingConfig::correct(2, 2);
        cfg.publish_before_write = true;
        let e = explore(RingModel::new(cfg), MAX_STATES);
        assert_eq!(e.violation.expect("must be caught").property, "M002");
    }

    #[test]
    fn skipped_space_check_is_caught() {
        let mut cfg = RingConfig::correct(2, 4);
        cfg.skip_space_check = true;
        let e = explore(RingModel::new(cfg), MAX_STATES);
        let v = e.violation.expect("overrun must be caught");
        assert!(v.property == "M003" || v.property == "M001", "{v:?}");
    }

    #[test]
    fn correct_budget_verifies() {
        let e = explore(
            BudgetModel::new(BudgetConfig::correct(2, 2, 2, 2)),
            MAX_STATES,
        );
        assert!(e.violation.is_none(), "{:?}", e.violation);
        assert!(e.states > 50);
    }

    #[test]
    fn blind_store_budget_is_caught() {
        let mut cfg = BudgetConfig::correct(2, 2, 2, 1);
        cfg.blind_store = true;
        let e = explore(BudgetModel::new(cfg), MAX_STATES);
        let v = e.violation.expect("lost update must be caught");
        assert!(v.property == "M004" || v.property == "M005", "{v:?}");
    }

    #[test]
    fn suite_is_clean_and_counts_are_plausible() {
        let r = run_suite();
        for c in &r.checks {
            assert!(c.ok, "{}: {:?}", c.name, c.violation);
        }
        assert!(r.clean());
        assert!(r.states > 1_000);
        assert!(r.checks.iter().filter(|c| c.mutation).count() >= 4);
    }

    #[test]
    fn stale_reads_are_actually_explored() {
        // The consumer must be able to read a stale tail: candidate
        // count for TAIL exceeds 1 once the producer has published
        // while the consumer's frontier is behind.
        let mut m = RingModel::new(RingConfig::correct(2, 2));
        // P: write slot, publish tail.
        m.step(0, 0).expect("slot write succeeds");
        m.step(0, 0).expect("tail publish succeeds");
        assert_eq!(m.choices(1), 2, "consumer should see {{initial, new}} tail");
    }

    #[test]
    fn property_codes_are_unique() {
        let mut codes: Vec<&str> = model_properties().iter().map(|r| r.code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }
}
