//! Source-level determinism lints (`csalt-audit srclint`, rules
//! `S000`–`S008`).
//!
//! The repo's value proposition is bit-identical reproduction, and the
//! failure modes that silently break it are *source* patterns: a
//! `HashMap` iteration feeding a report, a wall-clock read leaking into
//! a result, a mis-ordered atomic in the SPSC ring. This pass walks
//! every `crates/*/src` file with the hand-rolled [`crate::lexer`]
//! (vendored-deps constraint — no `syn`) and enforces the project's
//! determinism contracts:
//!
//! | rule | contract |
//! |------|----------|
//! | S001 | no `HashMap`/`HashSet` in result-affecting crates |
//! | S002 | no wall-clock / thread-identity reads outside timing modules |
//! | S003 | every `unsafe` carries a `// SAFETY:` comment |
//! | S004 | zero `unsafe` in crates on the no-unsafe list (pipeline) |
//! | S005 | no float arithmetic in counter/cycle-accounting modules |
//! | S006 | no `f32` anywhere (f64-only policy where floats are legal) |
//! | S007 | every `Release` store field has a matching `Acquire` load |
//! | S008 | no `Relaxed` on manifest-listed publication fields |
//! | S000 | waiver hygiene (reasonless or stale `audit-waive` markers) |
//!
//! Scope comes from `crates/audit/srclint.manifest` (embedded at
//! compile time). Code under `#[cfg(test)]` / `#[test]` is exempt.
//! Intentional exceptions are inline waivers —
//! `// audit-waive: S001 <reason>` on the offending line or the line
//! above — which the tool counts and reports; a waiver without a
//! reason suppresses nothing and is itself a finding.

use crate::lexer::{lex, Comment, Tok, Token};
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Version of the JSON report schema emitted by `--format json`.
pub use crate::SCHEMA_VERSION;

/// The embedded policy manifest text.
pub const MANIFEST_TEXT: &str = include_str!("../srclint.manifest");

/// Registry entry for `--list-rules`.
pub fn srclint_rules() -> &'static [crate::Rule] {
    &[
        crate::Rule {
            code: "S000",
            name: "waiver-hygiene",
            summary: "audit-waive markers carry a reason and match a finding",
        },
        crate::Rule {
            code: "S001",
            name: "hash-collection",
            summary: "no HashMap/HashSet in result-affecting crates (BTree* or sorted)",
        },
        crate::Rule {
            code: "S002",
            name: "wall-clock",
            summary: "no Instant/SystemTime/thread-id reads outside timing modules",
        },
        crate::Rule {
            code: "S003",
            name: "safety-comment",
            summary: "every unsafe block carries a // SAFETY: justification",
        },
        crate::Rule {
            code: "S004",
            name: "no-unsafe-crate",
            summary: "zero unsafe in crates on the no-unsafe list (pipeline)",
        },
        crate::Rule {
            code: "S005",
            name: "integer-counters",
            summary: "no float types/literals in counter/cycle-accounting modules",
        },
        crate::Rule {
            code: "S006",
            name: "no-f32",
            summary: "no f32 anywhere in crate sources (f64-only float policy)",
        },
        crate::Rule {
            code: "S007",
            name: "release-acquire-pairing",
            summary: "every Release-stored atomic field has an Acquire load",
        },
        crate::Rule {
            code: "S008",
            name: "no-relaxed-publication",
            summary: "Relaxed denied on manifest-listed publication fields",
        },
    ]
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

/// Parsed scope manifest (see `srclint.manifest` for the format).
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// S001 scope: path prefixes where hash collections are denied.
    pub hash_deny: Vec<String>,
    /// S002 exemptions: path prefixes where clock reads are allowed.
    pub clock_allow: Vec<String>,
    /// S004 scope: path prefixes where `unsafe` is denied outright.
    pub no_unsafe: Vec<String>,
    /// S005 scope: path prefixes that must stay float-free.
    pub float_deny: Vec<String>,
    /// S007/S008 scope: the ring/budget modules.
    pub atomics_scope: Vec<String>,
    /// S008: atomic field names that must never use `Relaxed`.
    pub relaxed_deny: Vec<String>,
}

impl Manifest {
    /// Parses the line-based manifest format.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, arg) = line
                .split_once(' ')
                .ok_or_else(|| format!("manifest line {}: missing argument", lineno + 1))?;
            let arg = arg.trim().to_string();
            match directive {
                "hash-deny" => m.hash_deny.push(arg),
                "clock-allow" => m.clock_allow.push(arg),
                "no-unsafe-crate" => m.no_unsafe.push(arg),
                "float-deny" => m.float_deny.push(arg),
                "atomics-scope" => m.atomics_scope.push(arg),
                "relaxed-deny" => m.relaxed_deny.push(arg),
                other => {
                    return Err(format!(
                        "manifest line {}: unknown directive {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(m)
    }

    /// The compiled-in manifest.
    pub fn builtin() -> &'static Manifest {
        static BUILTIN: OnceLock<Manifest> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            Manifest::parse(MANIFEST_TEXT).unwrap_or_else(|e| {
                // The embedded manifest is part of the source tree; a
                // parse error is a build bug, surfaced loudly.
                panic!("embedded srclint.manifest is invalid: {e}")
            })
        })
    }
}

fn under(path: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| path == p || path.starts_with(&format!("{p}/")))
}

// ---------------------------------------------------------------------
// Findings and reports.
// ---------------------------------------------------------------------

/// One srclint finding.
#[derive(Debug, Clone, Serialize)]
pub struct SrcViolation {
    /// Rule code (`S00x`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Whether an inline `audit-waive` marker with a reason covers it.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waive_reason: Option<String>,
}

impl fmt::Display for SrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )?;
        if let Some(reason) = &self.waive_reason {
            write!(f, " [waived: {reason}]")?;
        }
        Ok(())
    }
}

/// Outcome of a srclint run.
#[derive(Debug, Clone, Serialize)]
pub struct SrclintReport {
    /// JSON schema version.
    pub version: u32,
    /// Files scanned.
    pub files: u64,
    /// Unwaived findings (these fail the run).
    pub errors: u64,
    /// Findings covered by a reasoned waiver.
    pub waived: u64,
    /// Every finding, unwaived first.
    pub violations: Vec<SrcViolation>,
}

impl SrclintReport {
    fn new(files: u64, mut violations: Vec<SrcViolation>) -> Self {
        violations.sort_by(|a, b| {
            a.waived
                .cmp(&b.waived)
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.line.cmp(&b.line))
                .then_with(|| a.rule.cmp(b.rule))
        });
        let waived = violations.iter().filter(|v| v.waived).count() as u64;
        let errors = violations.len() as u64 - waived;
        SrclintReport {
            version: SCHEMA_VERSION,
            files,
            errors,
            waived,
            violations,
        }
    }

    /// Whether the run found no unwaived violations.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.errors == 0
    }
}

// ---------------------------------------------------------------------
// Per-file analysis.
// ---------------------------------------------------------------------

struct Waiver {
    rule: String,
    reason: String,
    line: u32,
    used: bool,
}

struct FileAnalysis {
    path: String,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    /// Token mask: true = inside a `#[cfg(test)]` / `#[test]` item.
    skip: Vec<bool>,
    waivers: Vec<Waiver>,
}

fn analyze(path: &str, src: &str) -> FileAnalysis {
    let (tokens, comments) = lex(src);
    let skip = test_skip_mask(&tokens);
    // Line ranges covered by skipped tokens, so waivers inside test
    // code are ignored too.
    let mut skipped_lines: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if skip[i] {
            let start = tokens[i].line;
            let mut j = i;
            while j + 1 < tokens.len() && skip[j + 1] {
                j += 1;
            }
            skipped_lines.push((start, tokens[j].line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    let in_test = |line: u32| skipped_lines.iter().any(|&(a, b)| line >= a && line <= b);

    let mut waivers = Vec::new();
    for c in &comments {
        if in_test(c.line) {
            continue;
        }
        // Anchored to the start of the comment so prose that merely
        // *mentions* the marker (like this crate's docs) is not one.
        let text = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        if let Some(rest) = text.strip_prefix("audit-waive:") {
            let rest = rest.trim();
            let (rule, reason) = match rest.split_once(char::is_whitespace) {
                Some((r, why)) => (r.to_string(), why.trim().to_string()),
                None => (rest.to_string(), String::new()),
            };
            waivers.push(Waiver {
                rule,
                reason,
                line: c.line,
                used: false,
            });
        }
    }
    FileAnalysis {
        path: path.to_string(),
        tokens,
        comments,
        skip,
        waivers,
    }
}

/// Marks tokens belonging to `#[cfg(test)]`- or `#[test]`-gated items.
fn test_skip_mask(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let is_punct = |t: &Token, c: char| t.tok == Tok::Punct(c);
    let mut i = 0usize;
    while i < tokens.len() {
        if is_punct(&tokens[i], '#') && tokens.get(i + 1).is_some_and(|t| is_punct(t, '[')) {
            let Some(attr_end) = match_group(tokens, i + 1, '[', ']') else {
                break;
            };
            let idents: Vec<&str> = tokens[i..=attr_end]
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Ident(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            let gated = (idents.contains(&"cfg") && idents.contains(&"test")) || idents == ["test"];
            if !gated {
                i = attr_end + 1;
                continue;
            }
            // Consume any further attributes, then the gated item: up
            // to a top-level `;` or through the first brace group.
            let mut j = attr_end + 1;
            while j + 1 < tokens.len() && is_punct(&tokens[j], '#') && is_punct(&tokens[j + 1], '[')
            {
                match match_group(tokens, j + 1, '[', ']') {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            let mut end = j;
            while end < tokens.len() {
                if is_punct(&tokens[end], ';') {
                    break;
                }
                if is_punct(&tokens[end], '{') {
                    end = match_group(tokens, end, '{', '}').unwrap_or(tokens.len() - 1);
                    break;
                }
                end += 1;
            }
            let end = end.min(tokens.len() - 1);
            for s in &mut skip[i..=end] {
                *s = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    skip
}

/// Index of the token closing the group opened at `open` (`tokens[open]`
/// must be the opening delimiter).
fn match_group(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.tok == Tok::Punct(open_c) {
            depth += 1;
        } else if t.tok == Tok::Punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Atomic-operation extraction (S007/S008).
// ---------------------------------------------------------------------

const ATOMIC_LOADS: &[&str] = &["load"];
const ATOMIC_STORES: &[&str] = &["store"];
const ATOMIC_RMWS: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

#[derive(Debug)]
struct AtomicOp {
    field: String,
    method: String,
    orderings: Vec<String>,
    line: u32,
    file: String,
}

/// Extracts `<expr>.<atomic_method>(...)` call sites with the atomic
/// field name (last plain identifier in the receiver chain, skipping
/// tuple indices and bracket groups) and every `Ordering` variant named
/// in the argument list.
fn atomic_ops(fa: &FileAnalysis) -> Vec<AtomicOp> {
    let tokens = &fa.tokens;
    let mut ops = Vec::new();
    for i in 0..tokens.len() {
        if fa.skip[i] {
            continue;
        }
        let Tok::Ident(method) = &tokens[i].tok else {
            continue;
        };
        let method = method.as_str();
        if !(ATOMIC_LOADS.contains(&method)
            || ATOMIC_STORES.contains(&method)
            || ATOMIC_RMWS.contains(&method))
        {
            continue;
        }
        // Must be a method call: preceded by `.`, followed by `(`.
        if i == 0
            || tokens[i - 1].tok != Tok::Punct('.')
            || tokens.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        let Some(field) = receiver_field(tokens, i - 1) else {
            continue;
        };
        let Some(close) = match_group(tokens, i + 1, '(', ')') else {
            continue;
        };
        let orderings: Vec<String> = tokens[i + 2..close]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s)
                    if matches!(
                        s.as_str(),
                        "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                    ) =>
                {
                    Some(s.clone())
                }
                _ => None,
            })
            .collect();
        if orderings.is_empty() {
            // Not an atomic call after all (e.g. `Vec::swap`, a trait
            // `load` without an Ordering argument).
            continue;
        }
        ops.push(AtomicOp {
            field,
            method: method.to_string(),
            orderings,
            line: tokens[i].line,
            file: fa.path.clone(),
        });
    }
    ops
}

/// Walks backwards from the `.` before an atomic method to the plain
/// identifier naming the field: skips tuple indices (`.0`) and balanced
/// `[...]` / `(...)` groups.
fn receiver_field(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot; // tokens[k] is the `.`
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match &tokens[k].tok {
            Tok::Ident(name) => return Some(name.clone()),
            Tok::Int(_) => {
                // tuple index: expect a `.` before it
                if k == 0 || tokens[k - 1].tok != Tok::Punct('.') {
                    return None;
                }
                k -= 1; // now at the `.`, loop continues backwards
            }
            Tok::Punct(']') => k = rmatch_group(tokens, k, '[', ']')?,
            Tok::Punct(')') => k = rmatch_group(tokens, k, '(', ')')?,
            _ => return None,
        }
    }
}

/// Index of the token opening the group closed at `close`.
fn rmatch_group(tokens: &[Token], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        if tokens[k].tok == Tok::Punct(close_c) {
            depth += 1;
        } else if tokens[k].tok == Tok::Punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------

fn violation(rule: &'static str, fa: &FileAnalysis, line: u32, message: String) -> SrcViolation {
    SrcViolation {
        rule,
        file: fa.path.clone(),
        line,
        message,
        waived: false,
        waive_reason: None,
    }
}

/// Rules decidable from one file alone (everything but S007).
fn per_file_rules(fa: &FileAnalysis, m: &Manifest) -> Vec<SrcViolation> {
    let mut out = Vec::new();
    let path = fa.path.as_str();
    let hash_scope = under(path, &m.hash_deny);
    let clock_denied = !under(path, &m.clock_allow);
    let no_unsafe = under(path, &m.no_unsafe);
    let float_denied = under(path, &m.float_deny);

    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.skip[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) => match id.as_str() {
                "HashMap" | "HashSet" if hash_scope => out.push(violation(
                    "S001",
                    fa,
                    t.line,
                    format!(
                        "{id} in a result-affecting crate: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or an explicitly \
                         sorted collection"
                    ),
                )),
                "Instant" | "SystemTime" if clock_denied => out.push(violation(
                    "S002",
                    fa,
                    t.line,
                    format!(
                        "{id} outside the timing-allowed modules: wall-clock reads \
                         make runs irreproducible; charge simulated cycles instead"
                    ),
                )),
                "thread" if clock_denied && ident_seq(fa, i, &["thread", "current"]) => {
                    out.push(violation(
                        "S002",
                        fa,
                        t.line,
                        "thread::current() outside the timing-allowed modules: thread \
                         identity is schedule-dependent"
                            .to_string(),
                    ));
                }
                "unsafe" => {
                    if no_unsafe {
                        out.push(violation(
                            "S004",
                            fa,
                            t.line,
                            "unsafe in a zero-unsafe crate: the pipeline's lock-free \
                             structures are safe by design (atomic slot words); keep \
                             them that way"
                                .to_string(),
                        ));
                    } else if !has_safety_comment(fa, t.line) {
                        out.push(violation(
                            "S003",
                            fa,
                            t.line,
                            "unsafe without a `// SAFETY:` comment within the 3 lines \
                             above: every unsafe block must state its proof obligation"
                                .to_string(),
                        ));
                    }
                }
                "f32" => {
                    if float_denied {
                        out.push(violation(
                            "S005",
                            fa,
                            t.line,
                            "f32 in an integer-only counter/cycle module".to_string(),
                        ));
                    } else {
                        out.push(violation(
                            "S006",
                            fa,
                            t.line,
                            "f32 is banned workspace-wide: accumulated single-precision \
                             rounding is platform/codegen-sensitive; use f64 or integers"
                                .to_string(),
                        ));
                    }
                }
                "f64" if float_denied => out.push(violation(
                    "S005",
                    fa,
                    t.line,
                    "f64 in an integer-only counter/cycle module: cycle accounting \
                     must be exact integer arithmetic"
                        .to_string(),
                )),
                _ => {}
            },
            Tok::Float(text) if float_denied => out.push(violation(
                "S005",
                fa,
                t.line,
                format!("float literal {text} in an integer-only counter/cycle module"),
            )),
            _ => {}
        }
    }

    // S008: Relaxed on protected publication fields.
    if under(path, &m.atomics_scope) {
        for op in atomic_ops(fa) {
            if m.relaxed_deny.contains(&op.field) && op.orderings.iter().any(|o| o == "Relaxed") {
                out.push(violation(
                    "S008",
                    fa,
                    op.line,
                    format!(
                        "Ordering::Relaxed on publication field `{}` (.{}): slot \
                         visibility rides this edge; use Release/Acquire",
                        op.field, op.method
                    ),
                ));
            }
        }
    }
    out
}

/// S007 over an atomics scope (one fixture file, or the union of every
/// manifest-scoped file in a workspace run): each field that is ever
/// `Release`-stored must be `Acquire`-loaded somewhere in the scope.
fn pairing_rule(analyses: &[&FileAnalysis]) -> Vec<SrcViolation> {
    let ops: Vec<Vec<AtomicOp>> = analyses.iter().map(|fa| atomic_ops(fa)).collect();
    let mut release_stores: Vec<&AtomicOp> = Vec::new();
    let mut acquire_loaded: Vec<String> = Vec::new();
    for op in ops.iter().flatten() {
        let releases = op
            .orderings
            .iter()
            .any(|o| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"));
        let acquires = op
            .orderings
            .iter()
            .any(|o| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"));
        let is_store = ATOMIC_STORES.contains(&op.method.as_str());
        let is_load = ATOMIC_LOADS.contains(&op.method.as_str());
        let is_rmw = ATOMIC_RMWS.contains(&op.method.as_str());
        if releases && (is_store || is_rmw) {
            release_stores.push(op);
        }
        if acquires && (is_load || is_rmw) {
            acquire_loaded.push(op.field.clone());
        }
    }
    release_stores
        .into_iter()
        .filter(|op| !acquire_loaded.contains(&op.field))
        .map(|op| SrcViolation {
            rule: "S007",
            file: op.file.clone(),
            line: op.line,
            message: format!(
                "field `{}` is Release-stored but never Acquire-loaded in the \
                 atomics scope: the release edge synchronizes with nothing",
                op.field
            ),
            waived: false,
            waive_reason: None,
        })
        .collect()
}

/// Whether tokens at `i` start the identifier sequence `seq` joined by
/// `::` (e.g. `thread :: current`).
fn ident_seq(fa: &FileAnalysis, i: usize, seq: &[&str]) -> bool {
    let mut k = i;
    for (n, want) in seq.iter().enumerate() {
        match fa.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if s == want => {}
            _ => return false,
        }
        if n + 1 < seq.len() {
            if fa.tokens.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                || fa.tokens.get(k + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
            {
                return false;
            }
            k += 3;
        }
    }
    true
}

/// Whether a `// SAFETY:` comment sits on `line` or within 3 lines
/// above it.
fn has_safety_comment(fa: &FileAnalysis, line: u32) -> bool {
    fa.comments
        .iter()
        .any(|c| c.line <= line && line - c.line <= 3 && c.text.contains("SAFETY:"))
}

// ---------------------------------------------------------------------
// Waiver resolution.
// ---------------------------------------------------------------------

fn apply_waivers(fa: &mut FileAnalysis, violations: &mut Vec<SrcViolation>) {
    // Reasonless waivers are findings themselves and suppress nothing.
    for w in &fa.waivers {
        if w.reason.is_empty() {
            violations.push(SrcViolation {
                rule: "S000",
                file: fa.path.clone(),
                line: w.line,
                message: format!(
                    "audit-waive for {} has no reason: waivers must say why the \
                     exception is sound",
                    w.rule
                ),
                waived: false,
                waive_reason: None,
            });
        }
    }
    for v in violations.iter_mut() {
        if v.file != fa.path || v.rule == "S000" {
            continue;
        }
        if let Some(w) = fa.waivers.iter_mut().find(|w| {
            !w.reason.is_empty() && w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line)
        }) {
            w.used = true;
            v.waived = true;
            v.waive_reason = Some(w.reason.clone());
        }
    }
    for w in &fa.waivers {
        if !w.used && !w.reason.is_empty() {
            violations.push(SrcViolation {
                rule: "S000",
                file: fa.path.clone(),
                line: w.line,
                message: format!(
                    "stale audit-waive: no {} finding on this or the next line; \
                     delete the marker",
                    w.rule
                ),
                waived: false,
                waive_reason: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Lints a single source text under its (virtual) workspace-relative
/// path. The file is its own atomics scope. This is the fixture entry
/// point; [`lint_workspace`] is the real one.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<SrcViolation> {
    let m = Manifest::builtin();
    let mut fa = analyze(path, src);
    let mut violations = per_file_rules(&fa, m);
    if under(path, &m.atomics_scope) {
        violations.extend(pairing_rule(&[&fa]));
    }
    apply_waivers(&mut fa, &mut violations);
    violations
}

/// Walks every `crates/*/src/**/*.rs` under `root` and lints it.
pub fn lint_workspace(root: &Path) -> Result<SrclintReport, String> {
    let m = Manifest::builtin();
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for f in &files {
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        analyses.push(analyze(&rel, &src));
    }

    let mut violations = Vec::new();
    for fa in &analyses {
        violations.extend(per_file_rules(fa, m));
    }
    let scoped: Vec<&FileAnalysis> = analyses
        .iter()
        .filter(|fa| under(&fa.path, &m.atomics_scope))
        .collect();
    violations.extend(pairing_rule(&scoped));
    for fa in &mut analyses {
        apply_waivers(fa, &mut violations);
    }
    Ok(SrclintReport::new(files.len() as u64, violations))
}

/// Lints every embedded negative fixture under its virtual path and
/// merges the findings into one report (`csalt-audit srclint --broken`).
/// Non-clean by construction: the fixtures exist to trip rules.
#[must_use]
pub fn lint_fixtures() -> SrclintReport {
    let mut violations = Vec::new();
    for fx in crate::fixtures::FIXTURES {
        let parsed = crate::fixtures::parse(fx);
        violations.extend(lint_source(&parsed.path, parsed.body));
    }
    SrclintReport::new(crate::fixtures::FIXTURES.len() as u64, violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = lint_source(path, src)
            .into_iter()
            .filter(|v| !v.waived)
            .map(|v| v.rule)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn manifest_parses_and_is_nonempty() {
        let m = Manifest::builtin();
        assert!(m.hash_deny.iter().any(|p| p == "crates/sim"));
        assert!(m.relaxed_deny.contains(&"tail".to_string()));
        assert!(Manifest::parse("bogus-directive x").is_err());
    }

    #[test]
    fn hash_collections_flagged_only_in_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes("crates/sim/src/x.rs", src), vec!["S001"]);
        assert_eq!(codes("crates/telemetry/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  #[test]\n  fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn clock_reads_flagged_outside_allowed_modules() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["S002"]);
        assert_eq!(codes("crates/sim/src/sweep.rs", src), Vec::<&str>::new());
        let tid = "fn f() { let _ = std::thread::current().id(); }\n";
        assert_eq!(codes("crates/ptw/src/x.rs", tid), vec!["S002"]);
    }

    #[test]
    fn unsafe_needs_safety_comment_and_pipeline_denies_it() {
        let bare = "fn f() { unsafe { core(); } }\n";
        let with = "fn f() {\n  // SAFETY: proven elsewhere\n  unsafe { core(); }\n}\n";
        assert_eq!(codes("crates/cache/src/x.rs", bare), vec!["S003"]);
        assert_eq!(codes("crates/cache/src/x.rs", with), Vec::<&str>::new());
        assert_eq!(codes("crates/pipeline/src/x.rs", with), vec!["S004"]);
    }

    #[test]
    fn floats_flagged_in_counter_modules() {
        let src = "fn f() -> f64 { 1.5 }\n";
        assert_eq!(codes("crates/pipeline/src/budget.rs", src), vec!["S005"]);
        assert_eq!(
            codes("crates/core/src/hierarchy.rs", src),
            Vec::<&str>::new()
        );
        assert_eq!(
            codes("crates/core/src/x.rs", "fn g(x: f32) {}\n"),
            vec!["S006"]
        );
    }

    #[test]
    fn release_without_acquire_and_relaxed_publication() {
        let no_acq = "fn f(a: &AtomicUsize) { a.store(1, Ordering::Release); }\n";
        // receiver ident is `a`, not a denied field; rename to tail to
        // also check S008 separation.
        let v = lint_source("crates/pipeline/src/spsc.rs", no_acq);
        assert!(v.iter().any(|v| v.rule == "S007"), "{v:?}");
        let relaxed = "fn f(s: &S) { s.tail.store(1, Ordering::Relaxed); let _ = s.tail.load(Ordering::Acquire); }\n";
        assert_eq!(codes("crates/pipeline/src/spsc.rs", relaxed), vec!["S008"]);
        let paired = "fn f(s: &S) { s.tail.store(1, Ordering::Release); let _ = s.tail.load(Ordering::Acquire); }\n";
        assert_eq!(
            codes("crates/pipeline/src/spsc.rs", paired),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn receiver_field_skips_indices_and_tuples() {
        let src = "fn f(s: &S, i: usize) { s.shared.buf[i * 2].store(0, Ordering::Relaxed); s.h.tail.0.store(1, Ordering::Relaxed); }\n";
        let v = lint_source("crates/pipeline/src/spsc.rs", src);
        // buf is not denied; tail is.
        let s008: Vec<_> = v.iter().filter(|v| v.rule == "S008").collect();
        assert_eq!(s008.len(), 1, "{v:?}");
        assert!(s008[0].message.contains("`tail`"));
    }

    #[test]
    fn waivers_suppress_with_reason_and_are_findings_without() {
        let good = "// audit-waive: S001 lookup-only map, never iterated\nuse std::collections::HashMap;\n";
        let v = lint_source("crates/sim/src/x.rs", good);
        assert!(v.iter().all(|v| v.waived), "{v:?}");
        assert_eq!(v.len(), 1);

        let bad = "// audit-waive: S001\nuse std::collections::HashMap;\n";
        let c = codes("crates/sim/src/x.rs", bad);
        assert_eq!(c, vec!["S000", "S001"]);

        let stale = "// audit-waive: S002 nothing here needs it\nfn f() {}\n";
        assert_eq!(codes("crates/sim/src/x.rs", stale), vec!["S000"]);
    }

    #[test]
    fn srclint_rule_codes_are_unique() {
        let mut codes: Vec<&str> = srclint_rules().iter().map(|r| r.code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }
}
