//! `csalt-audit` CLI: three analysis layers behind one binary.
//!
//! * default / `--all-presets` — sweep every built-in preset ×
//!   translation scheme through the static rule registry (CSALT-Axxx).
//! * `srclint` — lex every `crates/*/src` file and enforce the
//!   source-level determinism rules (CSALT-S000+).
//! * `modelcheck` — exhaustively explore every schedule of the modeled
//!   SPSC ring and thread-budget ledger (CSALT-M001+).
//!
//! Exit status is 0 when no error-severity finding was reported, 1 when
//! at least one was, and 2 on usage errors.

use csalt_audit::modelcheck::{self, ModelcheckReport};
use csalt_audit::srclint::{self, SrclintReport};
use csalt_audit::{audit_config, conservation_rules, fixtures, static_rules, AuditReport};
use csalt_types::{SystemConfig, TranslationScheme};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Command {
    Presets,
    Srclint,
    Modelcheck,
}

struct Options {
    command: Command,
    format: Format,
    list_rules: bool,
    broken: bool,
}

const USAGE: &str = "usage: csalt-audit [srclint|modelcheck] [--all-presets] \
[--format text|json] [--list-rules] [--broken]

  (no subcommand) sweep every built-in preset x scheme through the
                  static CSALT-Axxx rules (the default action)
  srclint         lex every crates/*/src file and enforce the
                  source-level determinism rules (CSALT-S000+)
  modelcheck      exhaustively explore schedules of the modeled SPSC
                  ring and thread budget (CSALT-M001+)
  --all-presets   explicit spelling of the default action
  --format FMT    output format: text (default) or json
  --list-rules    print every rule registry (Axxx static, A1xx
                  conservation, Sxxx source, Mxxx model) and exit
  --broken        demonstrate the failure path: audit a deliberately
                  inconsistent config and lint the negative fixtures;
                  exits non-zero";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: Command::Presets,
        format: Format::Text,
        list_rules: false,
        broken: false,
    };
    let mut it = args.iter();
    let mut first = true;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "srclint" if first => opts.command = Command::Srclint,
            "modelcheck" if first => opts.command = Command::Modelcheck,
            "--all-presets" => {} // the default action; accepted for scripts
            "--format" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--format requires a value".to_string())?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--list-rules" => opts.list_rules = true,
            "--broken" => opts.broken = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        first = false;
    }
    Ok(opts)
}

/// A config with several seeded inconsistencies, used to demonstrate the
/// failure path end to end (`--broken`).
fn broken_config() -> (SystemConfig, TranslationScheme) {
    let mut cfg = SystemConfig::skylake();
    cfg.l3.ways = 3; // A002: capacity no longer divides into ways x lines
    cfg.epoch_accesses = 0; // A010: repartitioning can never trigger
    cfg.l2_tlb.latency = 0; // A005/A013 territory
    (cfg, TranslationScheme::StaticPartition { data_ways: 16 }) // A014
}

fn print_report(report: &AuditReport, format: Format) {
    match format {
        Format::Json => print_json(report),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!(
                "audited {} preset x scheme combinations: {} error(s), {} warning(s)",
                report.combinations, report.errors, report.warnings
            );
        }
    }
}

fn print_srclint(report: &SrclintReport, format: Format) {
    match format {
        Format::Json => print_json(report),
        Format::Text => {
            for v in &report.violations {
                println!("{v}");
            }
            println!(
                "linted {} file(s): {} error(s), {} waived finding(s)",
                report.files, report.errors, report.waived
            );
        }
    }
}

fn print_modelcheck(report: &ModelcheckReport, format: Format) {
    match format {
        Format::Json => print_json(report),
        Format::Text => {
            for c in &report.checks {
                println!("{c}");
            }
            println!(
                "explored {} state(s) / {} transition(s) / {} terminal(s) across {} check(s)",
                report.states,
                report.transitions,
                report.terminals,
                report.checks.len()
            );
        }
    }
}

fn print_json<T: serde::Serialize>(value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("csalt-audit: failed to serialize report: {e}"),
    }
}

fn list_rules() {
    println!("static rules (checked per preset x scheme):");
    for r in static_rules() {
        println!("  {}  {:<24} {}", r.code, r.name, r.summary);
    }
    println!("conservation laws (checked on runtime counters):");
    for r in conservation_rules() {
        println!("  {}  {:<24} {}", r.code, r.name, r.summary);
    }
    println!("source lints (csalt-audit srclint):");
    for r in srclint::srclint_rules() {
        println!("  {}  {:<24} {}", r.code, r.name, r.summary);
    }
    println!("model-checked properties (csalt-audit modelcheck):");
    for r in modelcheck::model_properties() {
        println!("  {}  {:<24} {}", r.code, r.name, r.summary);
    }
}

/// `--broken` under the default command: the inconsistent config sweep
/// plus a fixture lint demonstration. Exits non-zero by construction.
fn run_broken(format: Format) -> ExitCode {
    let (cfg, scheme) = broken_config();
    let report = AuditReport::new(1, audit_config("broken-demo", &cfg, &scheme));
    print_report(&report, format);
    if format == Format::Text {
        println!("\nnegative srclint fixtures (each must trip exactly its rule):");
        for outcome in fixtures::check_all() {
            println!(
                "  {} {:<22} expected [{}] got [{}]",
                if outcome.pass { "ok  " } else { "FAIL" },
                outcome.name,
                outcome.expected.join(" "),
                outcome.actual.join(" "),
            );
        }
    }
    // The demo is "working" when the seeded config fails and every
    // fixture trips as declared — but its exit code is still the audit
    // verdict, which is non-zero by construction.
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("csalt-audit: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let clean = match opts.command {
        Command::Srclint => {
            let report = if opts.broken {
                srclint::lint_fixtures()
            } else {
                let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
                let lint = srclint::find_workspace_root(&cwd)
                    .and_then(|root| srclint::lint_workspace(&root));
                match lint {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("csalt-audit: srclint failed: {e}");
                        return ExitCode::from(2);
                    }
                }
            };
            print_srclint(&report, opts.format);
            report.clean()
        }
        Command::Modelcheck => {
            let report = modelcheck::run_suite();
            print_modelcheck(&report, opts.format);
            report.clean()
        }
        Command::Presets => {
            if opts.broken {
                return run_broken(opts.format);
            }
            let report = csalt_audit::audit_all_presets();
            print_report(&report, opts.format);
            report.clean()
        }
    };

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
