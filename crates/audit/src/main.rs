//! `csalt-audit` CLI: sweep every built-in preset × translation scheme
//! through the static rule registry and report CSALT-Axxx diagnostics.
//!
//! Exit status is 0 when no error-severity diagnostic was found, 1 when
//! at least one was, and 2 on usage errors.

use csalt_audit::{audit_config, conservation_rules, static_rules, AuditReport};
use csalt_types::{SystemConfig, TranslationScheme};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    list_rules: bool,
    broken: bool,
}

const USAGE: &str =
    "usage: csalt-audit [--all-presets] [--format text|json] [--list-rules] [--broken]

  --all-presets   sweep every built-in preset x scheme (the default action)
  --format FMT    output format: text (default) or json
  --list-rules    print the CSALT-Axxx rule registry and exit
  --broken        audit a deliberately inconsistent config (demonstrates
                  a failing run; exits non-zero)";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        list_rules: false,
        broken: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-presets" => {} // the default action; accepted for scripts
            "--format" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--format requires a value".to_string())?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--list-rules" => opts.list_rules = true,
            "--broken" => opts.broken = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// A config with several seeded inconsistencies, used to demonstrate the
/// failure path end to end (`--broken`).
fn broken_config() -> (SystemConfig, TranslationScheme) {
    let mut cfg = SystemConfig::skylake();
    cfg.l3.ways = 3; // A002: capacity no longer divides into ways x lines
    cfg.epoch_accesses = 0; // A010: repartitioning can never trigger
    cfg.l2_tlb.latency = 0; // A005/A013 territory
    (cfg, TranslationScheme::StaticPartition { data_ways: 16 }) // A014
}

fn print_report(report: &AuditReport, format: Format) {
    match format {
        Format::Json => match serde_json::to_string_pretty(report) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("csalt-audit: failed to serialize report: {e}"),
        },
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!(
                "audited {} preset x scheme combinations: {} error(s), {} warning(s)",
                report.combinations, report.errors, report.warnings
            );
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("csalt-audit: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("static rules (checked per preset x scheme):");
        for r in static_rules() {
            println!("  {}  {:<20} {}", r.code, r.name, r.summary);
        }
        println!("conservation laws (checked on runtime counters):");
        for r in conservation_rules() {
            println!("  {}  {:<20} {}", r.code, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let report = if opts.broken {
        let (cfg, scheme) = broken_config();
        AuditReport::new(1, audit_config("broken-demo", &cfg, &scheme))
    } else {
        csalt_audit::audit_all_presets()
    };

    print_report(&report, opts.format);
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
