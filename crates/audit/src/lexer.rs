//! A minimal hand-rolled Rust lexer for the source-lint pass.
//!
//! The workspace takes no registry dependencies, so `syn` is out of
//! reach; the S-series rules only need token-level facts (identifiers,
//! float literals, punctuation, which lines are comments), so a small
//! lexer is enough. It understands everything that would otherwise
//! produce false positives at the string-matching level: line and
//! nested block comments, string/char/byte/raw-string literals,
//! lifetimes vs char literals, and tuple-index `.0` vs float literals.
//!
//! Comments are not discarded: they come back as a side stream so the
//! rules can look for `// SAFETY:` justifications and
//! `// audit-waive:` markers.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `HashMap`, `f64`, ...).
    Ident(String),
    /// Integer literal (`0`, `0x1f`, `12_000`).
    Int(String),
    /// Floating-point literal (`1.0`, `2e9`, `0.5f64`).
    Float(String),
    /// String, byte-string, or raw-string literal (contents dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A comment (line, block, or doc) with its text and start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line number the comment starts on.
    pub line: u32,
}

/// Lexes `src`, returning the token stream and the comment stream.
///
/// The lexer is lossy where the rules don't care (literal contents are
/// dropped) and never fails: unexpected bytes become `Punct` tokens so
/// a half-written fixture still lints.
#[must_use]
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                let start_line = line;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_literal(&b, i) => {
                let start_line = line;
                i = skip_prefixed_literal(&b, i, &mut line);
                tokens.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime if an identifier follows and the char after
                // it is not a closing quote (`'a` vs `'a'`).
                if b.get(i + 1).copied().is_some_and(is_ident_start) && b.get(i + 2) != Some(&'\'')
                {
                    i += 1;
                    while i < b.len() && is_ident(b[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    // Char literal: skip to the closing quote, honoring
                    // escapes.
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < b.len() && (is_ident(b[i]) || b[i] == '.') {
                    if b[i] == '.' {
                        // `0..10` is a range, `x.0.1` can't start here;
                        // only a digit right after the dot makes this a
                        // float.
                        if b.get(i + 1).copied().is_some_and(|d| d.is_ascii_digit()) && !is_float {
                            is_float = true;
                        } else {
                            break;
                        }
                    } else if (b[i] == 'e' || b[i] == 'E')
                        && b.get(i + 1)
                            .copied()
                            .is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-')
                        && b[start..i].iter().any(char::is_ascii_digit)
                        && !b[start..i]
                            .iter()
                            .any(|&x| x == 'x' || x == 'b' || x == 'o')
                    {
                        is_float = true;
                        i += 1; // consume the sign/first digit below
                    }
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let tok = if is_float || text.ends_with("f32") || text.ends_with("f64") {
                    Tok::Float(text)
                } else {
                    Tok::Int(text)
                };
                tokens.push(Token { tok, line });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident(b[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            other => {
                tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    (tokens, comments)
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte literal
/// rather than an identifier (`r"` / `r#"` / `b"` / `b'` / `br"` ...).
fn starts_raw_or_byte_literal(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    matches!(b.get(j), Some(&'"')) || (b[i] == 'b' && b.get(j) == Some(&'\''))
}

/// Skips a literal introduced by `r`/`b` prefixes; returns the index
/// past its end.
fn skip_prefixed_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if b.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) == Some(&'\'') {
        // Byte char literal `b'x'`.
        i += 1;
        while i < b.len() {
            match b[i] {
                '\\' => i += 2,
                '\'' => return i + 1,
                _ => i += 1,
            }
        }
        return i;
    }
    if b.get(i) != Some(&'"') {
        return i;
    }
    if raw {
        i += 1;
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
            }
            if b[i] == '"' {
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_string(b, i, line)
    }
}

/// Skips a plain `"..."` string starting at the opening quote; returns
/// the index past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let c = 'f';
            let x = real_ident;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn floats_vs_ranges_vs_tuple_index() {
        let (toks, _) = lex("let a = 1.0; let b = 0..10; let c = x.0; let d = 2e9; let e = 1f64;");
        let floats: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Float(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec!["1.0", "2e9", "1f64"]);
    }

    #[test]
    fn hex_is_not_a_float() {
        let (toks, _) = lex("let a = 0xE0; let b = 0b101;");
        assert!(toks.iter().all(|t| !matches!(t.tok, Tok::Float(_))));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let (toks, comments) = lex("a\n// c\nb\n\"s\ntring\"\nc");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.to_string()))
                .map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("c"), Some(6));
        assert_eq!(comments[0].line, 2);
    }
}
