//! `csalt-audit` — static invariant analysis and conservation-law
//! auditing for the CSALT simulator workspace.
//!
//! CSALT's evaluation is counter arithmetic: walks eliminated, partition
//! way sums, MPKI ratios. A silent invariant violation corrupts every
//! figure downstream without crashing, so this crate gives the workspace
//! a machine-checkable definition of "the model is still sane":
//!
//! * **Static rules** (`CSALT-A001`–`A015`, [`static_rules`] /
//!   [`audit_config`]) — checked without running a simulation, over every
//!   built-in [`SystemConfig`] preset × [`TranslationScheme`]. The
//!   predicates themselves live in [`csalt_types::invariants`] so the
//!   `validate()` methods on config types consume the exact same source
//!   of truth.
//! * **Conservation laws** (`CSALT-A101`–`A108`, [`conservation`]) —
//!   checked on a [`HierarchySnapshot`] after runs and at epoch
//!   boundaries when `csalt-sim` is built with its `audit` feature.
//!
//! * **Source lints** (`CSALT-S000`–`S008`, [`srclint`]) — a hand-rolled
//!   lexical analysis over every `crates/*/src` file that enforces the
//!   determinism contract at the source level: no hash-order iteration in
//!   result-affecting crates, no wall-clock reads outside timing modules,
//!   `// SAFETY:` on every unsafe block, integer-only counters, and
//!   Release/Acquire discipline on the SPSC publication indices.
//! * **Model checking** (`CSALT-M001`–`M005`, [`modelcheck`]) — exhaustive
//!   DFS over every schedule of modeled SPSC-ring and thread-budget
//!   executions under an abstract store-buffer memory model, proving FIFO
//!   delivery, publication safety, and budget conservation on bounded
//!   instances.
//!
//! The `csalt-audit` binary (`cargo run -p csalt-audit -- --all-presets`)
//! drives the static layer and exits non-zero on any error-severity
//! diagnostic; `--format json` emits machine-readable output. The
//! `srclint` and `modelcheck` subcommands drive the other two layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csalt_core::HierarchySnapshot;
use csalt_types::invariants::{self, Severity, Violation};
use csalt_types::{SystemConfig, TranslationScheme};
use serde::Serialize;
use std::fmt;

pub mod fixtures;
pub mod lexer;
pub mod modelcheck;
pub mod srclint;

pub use csalt_types::invariants::{check_scheme, check_system};

/// Version stamped into every JSON report this crate emits
/// (`AuditReport`, `SrclintReport`, `ModelcheckReport`). Bumped whenever
/// a report's shape changes so downstream consumers can dispatch.
pub const SCHEMA_VERSION: u32 = 2;

/// One finding, located in the preset × scheme space the audit swept.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Stable diagnostic code (`CSALT-Axxx`).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the finding applies: `preset/scheme/component` for static
    /// rules, `run/component` for conservation laws.
    pub subject: String,
    /// What is wrong and why it matters.
    pub message: String,
}

impl Diagnostic {
    /// Wraps a types-layer violation, prefixing the sweep context.
    pub fn from_violation(context: &str, v: &Violation) -> Self {
        Diagnostic {
            code: v.code,
            severity: v.severity,
            subject: if context.is_empty() {
                v.subject.clone()
            } else {
                format!("{context}/{}", v.subject)
            },
            message: v.message.clone(),
        }
    }

    fn error(code: &'static str, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// Registry entry describing one rule for `--list-rules` and DESIGN.md.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Rule {
    /// Stable code.
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// Every rule in the `CSALT-Axxx` code space. Codes are never renumbered;
/// retired rules keep their slot.
pub fn static_rules() -> &'static [Rule] {
    &[
        Rule {
            code: "CSALT-A001",
            name: "cache-nonzero",
            summary: "cache size, ways, and line bytes are positive",
        },
        Rule {
            code: "CSALT-A002",
            name: "cache-divisible",
            summary: "cache capacity divides into ways x line bytes",
        },
        Rule {
            code: "CSALT-A003",
            name: "cache-sets-pow2",
            summary: "cache set count is a power of two",
        },
        Rule {
            code: "CSALT-A004",
            name: "cache-line-size",
            summary: "line size matches the paper's 64 B (warning)",
        },
        Rule {
            code: "CSALT-A005",
            name: "tlb-nonzero",
            summary: "TLB entries and ways are positive",
        },
        Rule {
            code: "CSALT-A006",
            name: "tlb-divisible",
            summary: "TLB entries divide into ways",
        },
        Rule {
            code: "CSALT-A007",
            name: "pom-geometry",
            summary: "POM-TLB geometry and aperture are consistent",
        },
        Rule {
            code: "CSALT-A008",
            name: "dram-timings",
            summary: "DRAM timing/organization parameters are consistent",
        },
        Rule {
            code: "CSALT-A009",
            name: "core-params",
            summary: "core count, clock, contexts, CPI, and MLP are sane",
        },
        Rule {
            code: "CSALT-A010",
            name: "epoch-sanity",
            summary: "repartitioning epoch is positive and statistically useful",
        },
        Rule {
            code: "CSALT-A011",
            name: "pt-levels",
            summary: "page-table depth is 4 or 5",
        },
        Rule {
            code: "CSALT-A012",
            name: "latency-monotone",
            summary: "L1 < L2 < L3 < DRAM latency ordering (warning)",
        },
        Rule {
            code: "CSALT-A013",
            name: "tlb-latency-order",
            summary: "L1 TLB is not slower than the L2 TLB (warning)",
        },
        Rule {
            code: "CSALT-A014",
            name: "partition-bounds",
            summary: "every partition scheme leaves >= 1 way per entry kind",
        },
        Rule {
            code: "CSALT-A015",
            name: "large-tlb-premise",
            summary: "POM-TLB is larger than the SRAM L2 TLB (warning)",
        },
    ]
}

/// Conservation-law rules checked on runtime counters.
pub fn conservation_rules() -> &'static [Rule] {
    &[
        Rule {
            code: "CSALT-A101",
            name: "access-conservation",
            summary: "L1D accesses equal program accesses; hits + misses add up",
        },
        Rule {
            code: "CSALT-A102",
            name: "walks-bounded",
            summary: "page walks never exceed L2 TLB misses",
        },
        Rule {
            code: "CSALT-A103",
            name: "walk-cycles-bounded",
            summary: "walk cycles never exceed total translation cycles",
        },
        Rule {
            code: "CSALT-A104",
            name: "occupancy-bounded",
            summary: "valid lines never exceed cache capacity",
        },
        Rule {
            code: "CSALT-A105",
            name: "dram-row-conservation",
            summary: "DRAM row outcomes partition DRAM accesses",
        },
        Rule {
            code: "CSALT-A106",
            name: "cache-flow",
            summary: "fills <= misses, evictions <= fills, writebacks <= evictions",
        },
        Rule {
            code: "CSALT-A107",
            name: "ipc-finite",
            summary: "IPC is finite and positive when instructions retired",
        },
        Rule {
            code: "CSALT-A108",
            name: "scheme-components",
            summary: "POM-TLB/TSB statistics exist exactly for schemes using them",
        },
    ]
}

/// Translation schemes the sweep enumerates: all unit variants plus
/// representative static splits.
pub fn all_schemes(cfg: &SystemConfig) -> Vec<TranslationScheme> {
    let mut schemes = vec![
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
        TranslationScheme::Dip,
        TranslationScheme::Tsb,
        TranslationScheme::TsbCsalt,
        TranslationScheme::Drrip,
    ];
    // Static splits: the paper's footnote-6 ablation sweeps data-way
    // reservations; cover the edges and the middle of the L3's range.
    let max_data = cfg.l3.ways.saturating_sub(1).max(1);
    for data_ways in [1, cfg.l3.ways / 2, max_data] {
        let scheme = TranslationScheme::StaticPartition {
            data_ways: data_ways.clamp(1, max_data),
        };
        if !schemes.contains(&scheme) {
            schemes.push(scheme);
        }
    }
    schemes
}

/// Audits one configuration under one scheme: all static rules.
pub fn audit_config(
    context: &str,
    cfg: &SystemConfig,
    scheme: &TranslationScheme,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = invariants::check_system(cfg)
        .iter()
        .map(|v| Diagnostic::from_violation(context, v))
        .collect();
    // check_scheme violations already carry the scheme label as their
    // subject, so the preset context alone is enough.
    out.extend(
        invariants::check_scheme(cfg, scheme)
            .iter()
            .map(|v| Diagnostic::from_violation(context, v)),
    );
    out
}

/// Audits every built-in preset against every scheme — the binary's
/// `--all-presets` sweep.
pub fn audit_all_presets() -> AuditReport {
    let mut diagnostics = Vec::new();
    let mut combinations = 0u64;
    for (name, cfg) in SystemConfig::presets() {
        for scheme in all_schemes(&cfg) {
            combinations += 1;
            diagnostics.extend(audit_config(name, &cfg, &scheme));
        }
    }
    AuditReport::new(combinations, diagnostics)
}

/// Outcome of a sweep: counts plus every finding.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Preset × scheme combinations checked.
    pub combinations: u64,
    /// Error-severity findings.
    pub errors: u64,
    /// Warning-severity findings.
    pub warnings: u64,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Builds a report, sorting errors ahead of warnings.
    pub fn new(combinations: u64, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        let errors = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count() as u64;
        let warnings = diagnostics.len() as u64 - errors;
        AuditReport {
            version: SCHEMA_VERSION,
            combinations,
            errors,
            warnings,
            diagnostics,
        }
    }

    /// Whether the sweep found no error-severity diagnostics.
    pub fn clean(&self) -> bool {
        self.errors == 0
    }
}

/// Conservation-law checks over runtime counters (`CSALT-A101`+).
pub mod conservation {
    use super::{Diagnostic, HierarchySnapshot, TranslationScheme};
    use csalt_cache::{CacheStats, Occupancy};

    /// Audits a statistics snapshot against every conservation law that
    /// is decidable from counters alone. `context` names the run (e.g.
    /// the workload label); an empty string is fine.
    pub fn audit_snapshot(
        context: &str,
        snap: &HierarchySnapshot,
        scheme: &TranslationScheme,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let at = |component: &str| {
            if context.is_empty() {
                component.to_string()
            } else {
                format!("{context}/{component}")
            }
        };

        // A101: every program access is exactly one L1D access — the
        // translation path never touches the L1D, and nothing else does.
        let l1d_accesses = snap.l1d.total().accesses();
        if l1d_accesses != snap.accesses {
            out.push(Diagnostic::error(
                "CSALT-A101",
                at("l1d"),
                format!(
                    "L1D saw {l1d_accesses} accesses but the hierarchy served {} program \
                     accesses; hit/miss bookkeeping is corrupt",
                    snap.accesses
                ),
            ));
        }
        // A101 (cont.): the L1 TLB is probed at least once per access.
        if snap.l1_tlb.accesses() < snap.accesses {
            out.push(Diagnostic::error(
                "CSALT-A101",
                at("l1-tlb"),
                format!(
                    "L1 TLB recorded {} lookups for {} program accesses; every access \
                     must probe it at least once",
                    snap.l1_tlb.accesses(),
                    snap.accesses
                ),
            ));
        }

        // A102: a walk happens only after an L2 TLB miss, so eliminated
        // walks can never be negative (Figure 8's denominator).
        if snap.page_walks > snap.l2_tlb.misses {
            out.push(Diagnostic::error(
                "CSALT-A102",
                at("walker"),
                format!(
                    "{} page walks exceed {} L2 TLB misses; walk elimination would be \
                     negative",
                    snap.page_walks, snap.l2_tlb.misses
                ),
            ));
        }

        // A103: walk cycles are a component of translation cycles.
        if snap.page_walk_cycles > snap.translation_cycles {
            out.push(Diagnostic::error(
                "CSALT-A103",
                at("walker"),
                format!(
                    "{} walk cycles exceed {} total translation cycles",
                    snap.page_walk_cycles, snap.translation_cycles
                ),
            ));
        }

        // A105/A106 per component.
        for (name, dram) in [("ddr", &snap.ddr), ("die-stacked", &snap.stacked)] {
            let outcomes = dram.row_hits + dram.row_closed + dram.row_conflicts;
            if outcomes != dram.accesses {
                out.push(Diagnostic::error(
                    "CSALT-A105",
                    at(name),
                    format!(
                        "row outcomes {} ({} hit / {} closed / {} conflict) do not \
                         partition {} accesses",
                        outcomes, dram.row_hits, dram.row_closed, dram.row_conflicts, dram.accesses
                    ),
                ));
            }
            if dram.writes > dram.accesses {
                out.push(Diagnostic::error(
                    "CSALT-A105",
                    at(name),
                    format!("{} writes exceed {} accesses", dram.writes, dram.accesses),
                ));
            }
        }
        for (name, cache) in [("l1d", &snap.l1d), ("l2", &snap.l2), ("l3", &snap.l3)] {
            out.extend(audit_cache_flow(&at(name), cache));
        }

        // A108: component statistics exist exactly for schemes that have
        // the component.
        if snap.pom.is_some() != scheme.uses_pom_tlb() {
            out.push(Diagnostic::error(
                "CSALT-A108",
                at("pom-tlb"),
                format!(
                    "POM statistics {} but scheme {scheme} {}",
                    if snap.pom.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                    if scheme.uses_pom_tlb() {
                        "uses the POM-TLB"
                    } else {
                        "does not use it"
                    },
                ),
            ));
        }
        let tsb_scheme = matches!(scheme, TranslationScheme::Tsb | TranslationScheme::TsbCsalt);
        if snap.tsb.is_some() != tsb_scheme {
            out.push(Diagnostic::error(
                "CSALT-A108",
                at("tsb"),
                format!(
                    "TSB statistics {} but scheme {scheme} {}",
                    if snap.tsb.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                    if tsb_scheme {
                        "uses the TSB"
                    } else {
                        "does not use it"
                    },
                ),
            ));
        }
        out
    }

    /// A106: fill/eviction/writeback flow conservation for one cache.
    pub fn audit_cache_flow(subject: &str, stats: &CacheStats) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let misses = stats.total().misses;
        if stats.fills > misses {
            out.push(Diagnostic::error(
                "CSALT-A106",
                subject,
                format!(
                    "{} fills exceed {} misses (write-allocate fills once per miss)",
                    stats.fills, misses
                ),
            ));
        }
        if stats.evictions > stats.fills {
            out.push(Diagnostic::error(
                "CSALT-A106",
                subject,
                format!("{} evictions exceed {} fills", stats.evictions, stats.fills),
            ));
        }
        if stats.writebacks > stats.evictions {
            out.push(Diagnostic::error(
                "CSALT-A106",
                subject,
                format!(
                    "{} writebacks exceed {} evictions (only dirty evictions write back)",
                    stats.writebacks, stats.evictions
                ),
            ));
        }
        out
    }

    /// A104: a cache can never hold more valid lines than its capacity,
    /// and a partitioned scan can never observe negative occupancy.
    pub fn audit_occupancy(subject: &str, occ: &Occupancy) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if occ.data_lines + occ.tlb_lines > occ.capacity_lines {
            out.push(Diagnostic::error(
                "CSALT-A104",
                subject,
                format!(
                    "{} data + {} TLB lines exceed capacity {}",
                    occ.data_lines, occ.tlb_lines, occ.capacity_lines
                ),
            ));
        }
        out
    }

    /// A107: the headline performance figure must be a usable number.
    pub fn audit_ipc(subject: &str, ipc: f64, instructions: u64) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if instructions > 0 && !(ipc.is_finite() && ipc > 0.0) {
            out.push(Diagnostic::error(
                "CSALT-A107",
                subject,
                format!("IPC {ipc} is not finite and positive despite {instructions} retired instructions"),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::invariants::Severity;

    #[test]
    fn all_presets_by_all_schemes_is_clean() {
        let report = audit_all_presets();
        assert!(
            report.combinations >= 25,
            "sweep too small: {}",
            report.combinations
        );
        assert!(
            report.clean(),
            "built-in presets must audit clean:\n{:#?}",
            report.diagnostics
        );
        assert_eq!(report.warnings, 0, "{:#?}", report.diagnostics);
    }

    #[test]
    fn rule_codes_are_unique_and_well_formed() {
        let mut codes: Vec<&str> = static_rules()
            .iter()
            .chain(conservation_rules())
            .map(|r| r.code)
            .collect();
        let total = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), total, "duplicate rule codes");
        for code in codes {
            assert!(code.starts_with("CSALT-A"), "bad code {code}");
            assert_eq!(code.len(), "CSALT-A000".len(), "bad code {code}");
        }
    }

    #[test]
    fn broken_geometry_is_reported_with_its_code() {
        let mut cfg = SystemConfig::skylake();
        cfg.l2.ways = 3; // capacity no longer divides
        let diags = audit_config("broken", &cfg, &TranslationScheme::CsaltCd);
        assert!(diags.iter().any(|d| d.code == "CSALT-A002"), "{diags:?}");
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
        assert!(diags[0].subject.starts_with("broken/"));
    }

    #[test]
    fn static_partition_bounds_are_enforced() {
        let cfg = SystemConfig::skylake();
        let bad = TranslationScheme::StaticPartition {
            data_ways: cfg.l3.ways,
        };
        let diags = audit_config("t", &cfg, &bad);
        assert!(diags.iter().any(|d| d.code == "CSALT-A014"), "{diags:?}");

        let good = TranslationScheme::StaticPartition { data_ways: 4 };
        assert!(audit_config("t", &cfg, &good).is_empty());
    }

    #[test]
    fn latency_inversion_is_a_warning_not_an_error() {
        let mut cfg = SystemConfig::skylake();
        cfg.l3.latency = cfg.l2.latency; // no longer strictly increasing
        let diags = audit_config("t", &cfg, &TranslationScheme::Conventional);
        assert!(diags
            .iter()
            .any(|d| d.code == "CSALT-A012" && d.severity == Severity::Warning));
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
        // ...and validate() still accepts it: warnings are advisory.
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn reports_serialize_to_json() {
        let report = audit_all_presets();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("\"combinations\""));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains(&format!("\"version\": {SCHEMA_VERSION}")));
    }

    #[test]
    fn diagnostics_sort_errors_first() {
        let mut cfg = SystemConfig::skylake();
        cfg.l2.latency = 1; // warning (latency order)
        cfg.epoch_accesses = 0; // error
        let report = AuditReport::new(1, audit_config("x", &cfg, &TranslationScheme::Conventional));
        assert!(report.errors >= 1 && report.warnings >= 1);
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert!(!report.clean());
    }
}
