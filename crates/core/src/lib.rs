//! The CSALT system: the paper's memory hierarchy (Figure 4) with every
//! evaluated translation scheme behind one interface.
//!
//! [`MemoryHierarchy`] assembles the substrates from the sibling crates
//! — SRAM TLBs, data caches, POM-TLB, TSB, page walkers, DRAM — and
//! dispatches on [`csalt_types::TranslationScheme`]:
//!
//! | scheme | translation path | cache management |
//! |---|---|---|
//! | `Conventional` | L1/L2 TLB → 2D page walk | none |
//! | `PomTlb` | L1/L2 TLB → large L3 TLB → walk | none (LRU) |
//! | `CsaltD` | same | dynamic MU partitioning |
//! | `CsaltCd` | same | criticality-weighted partitioning |
//! | `Dip` | same | set-dueling insertion |
//! | `Tsb` | L1/L2 TLB → software TSB → walk | none |
//! | `StaticPartition` | same as POM-TLB | fixed way split |
//!
//! # Example
//!
//! ```
//! use csalt_core::MemoryHierarchy;
//! use csalt_ptw::HugePagePolicy;
//! use csalt_types::{CoreId, MemAccess, SystemConfig, TranslationScheme, VirtAddr};
//!
//! let cfg = SystemConfig::skylake();
//! let mut hier = MemoryHierarchy::new(
//!     &cfg,
//!     TranslationScheme::CsaltCd,
//!     true, // virtualized
//!     HugePagePolicy::NONE,
//!     1,
//! );
//! let ctx = hier.add_context();
//! let charge = hier.access(CoreId::new(0), ctx, MemAccess::read(VirtAddr::new(0x1000), 4));
//! assert!(charge.walked, "first touch of a page must walk");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod managed;

pub use hierarchy::{AccessCharge, BlockAccess, HierarchySnapshot, MemoryHierarchy};
pub use managed::{CacheManagement, ManagedCache, PartitionSample};

// Re-export the stage-trace vocabulary so downstream consumers of
// [`MemoryHierarchy::access_traced`] need not depend on csalt-telemetry.
pub use csalt_telemetry::{ServedBy, StageSample, WalkStage};
