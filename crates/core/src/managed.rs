//! A data cache bundled with its CSALT machinery: stack-distance
//! profilers, epoch controller and (optionally) DIP set dueling.
//!
//! This is the per-cache slice of Figure 6's flowchart: every access
//! updates the profilers; at each epoch boundary the marginal utilities
//! are computed and the way partition adjusted.

use csalt_cache::{AccessOutcome, Cache, DipController};
use csalt_profiler::{
    choose_partition, utility_curve, EpochController, PartitionDecision, StackDistanceProfiler,
    Weights,
};
use csalt_types::{CkptError, CkptReader, CkptWriter, EntryKind, LineAddr, ReplacementKind};

/// How a managed cache decides its partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheManagement {
    /// No partition, MRU insertion — the POM-TLB / conventional baseline.
    Unmanaged,
    /// CSALT dynamic partitioning; criticality weights are supplied per
    /// epoch by the caller (unit weights ⇒ CSALT-D, estimated ⇒ CSALT-CD).
    Csalt,
    /// Fixed way split (footnote-6 static ablation).
    Static {
        /// Ways permanently reserved for data lines.
        data_ways: u32,
    },
    /// DIP set dueling over all traffic (no partition).
    Dip,
}

/// One epoch-boundary snapshot of the partition, for Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSample {
    /// Accesses seen by this cache when the sample was taken.
    pub at_access: u64,
    /// Ways assigned to TLB entries.
    pub tlb_ways: u32,
    /// Total ways.
    pub total_ways: u32,
}

impl PartitionSample {
    /// Fraction of the cache's ways assigned to TLB entries.
    pub fn tlb_fraction(&self) -> f64 {
        f64::from(self.tlb_ways) / f64::from(self.total_ways)
    }
}

/// A cache plus its management state.
#[derive(Debug)]
pub struct ManagedCache {
    cache: Cache,
    management: CacheManagement,
    profiler: StackDistanceProfiler,
    epoch: EpochController,
    dip: Option<DipController>,
    accesses: u64,
    partition_trace: Vec<PartitionSample>,
    trace_enabled: bool,
    decisions: u64,
    last_decision: Option<PartitionDecision>,
    last_curve: Vec<(u32, f64)>,
}

impl ManagedCache {
    /// Builds a managed cache.
    ///
    /// `profiler_interval` samples every n-th set in the shadow
    /// directories (1 = all sets); `epoch_accesses` is the
    /// repartitioning cadence.
    pub fn new(
        sets: u64,
        ways: u32,
        policy: ReplacementKind,
        management: CacheManagement,
        epoch_accesses: u64,
        profiler_interval: u64,
    ) -> Self {
        let mut cache = Cache::new(sets, ways, policy);
        let dip = match management {
            CacheManagement::Dip => Some(DipController::new(sets)),
            _ => None,
        };
        if let CacheManagement::Static { data_ways } = management {
            cache.set_partition(data_ways);
        }
        Self {
            cache,
            management,
            profiler: StackDistanceProfiler::new(sets, ways, profiler_interval),
            epoch: EpochController::new(epoch_accesses),
            dip,
            accesses: 0,
            partition_trace: Vec::new(),
            trace_enabled: false,
            decisions: 0,
            last_decision: None,
            last_curve: Vec::new(),
        }
    }

    /// Enables recording of per-epoch partition samples (Figure 9).
    pub fn enable_partition_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded partition samples.
    pub fn partition_trace(&self) -> &[PartitionSample] {
        &self.partition_trace
    }

    /// The underlying cache (stats, occupancy).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Resets the cache's statistics; contents, partition state and the
    /// partition trace are preserved (used to discard warmup).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Enables or disables the underlying cache's L0 hit-way memo.
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.cache.set_l0_enabled(enabled);
    }

    /// The underlying cache's L0 memo counters.
    pub fn l0_stats(&self) -> csalt_types::L0Stats {
        self.cache.l0_stats()
    }

    /// Drops the underlying cache's L0 memo entry (context switch hook).
    pub fn l0_invalidate(&mut self) {
        self.cache.l0_invalidate();
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Performs one access. `weights` is only evaluated at epoch
    /// boundaries (pass `|| Weights::UNIT` for CSALT-D / unmanaged), so
    /// estimator-backed weights cost nothing on ordinary accesses.
    pub fn access(
        &mut self,
        line: LineAddr,
        kind: EntryKind,
        write: bool,
        weights: impl FnOnce() -> Weights,
    ) -> AccessOutcome {
        self.accesses += 1;

        // Profilers observe every access, managed or not (the paper's
        // monitors run continuously; unmanaged configurations simply
        // never consult them) — the set/tag split is only computed when
        // a profiler is actually listening.
        if matches!(self.management, CacheManagement::Csalt) {
            let sets = self.cache.sets();
            // Set counts are powers of two (asserted by `Cache::new`), so
            // the tag split is a shift, not a division.
            let set = line.line_number() & (sets - 1);
            let tag = line.line_number() >> sets.trailing_zeros();
            self.profiler.record(set, tag, kind);
        }

        let outcome = match (&self.management, &mut self.dip) {
            (CacheManagement::Dip, Some(dip)) => {
                // With recency policies this is DIP (LRU vs BIP insert);
                // with RRIP storage the same dueling selects SRRIP vs
                // BRRIP insertion depth — i.e. DRRIP.
                let set = line.line_number() & (self.cache.sets() - 1);
                let insert = dip.insertion_for(set);
                let out = self.cache.access_with_insertion(line, kind, write, insert);
                if !out.hit {
                    dip.record_miss(set);
                }
                out
            }
            _ => self.cache.access(line, kind, write),
        };

        if matches!(self.management, CacheManagement::Csalt) && self.epoch.tick() {
            self.repartition(weights());
        }
        outcome
    }

    /// Recomputes the partition from the epoch's profiles (Algorithm 1).
    fn repartition(&mut self, weights: Weights) {
        let data = self.profiler.counts(EntryKind::Data);
        let tlb = self.profiler.counts(EntryKind::Tlb);
        let decision = choose_partition(&data, &tlb, 1, weights);
        self.cache.set_partition(decision.data_ways);
        self.decisions += 1;
        self.last_decision = Some(decision);
        if self.trace_enabled {
            // The curve is pure recomputation over the same profiles the
            // argmax already scanned — it cannot change the decision.
            self.last_curve = utility_curve(&data, &tlb, 1, weights);
            self.partition_trace.push(PartitionSample {
                at_access: self.accesses,
                tlb_ways: decision.tlb_ways,
                total_ways: self.cache.ways(),
            });
        }
        self.profiler.reset_counters();
    }

    /// Repartition decisions taken so far (epoch boundaries crossed).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The most recent repartition decision, if one has been taken.
    pub fn last_decision(&self) -> Option<PartitionDecision> {
        self.last_decision
    }

    /// The marginal-utility curve `[(data_ways, utility)]` behind the
    /// most recent decision. Populated only when the partition trace is
    /// enabled; empty otherwise.
    pub fn last_curve(&self) -> &[(u32, f64)] {
        &self.last_curve
    }

    /// Current ways reserved for data, if partitioned.
    pub fn data_ways(&self) -> Option<u32> {
        self.cache.data_ways()
    }

    /// Serializes the cache, profiler, epoch, DIP and decision state.
    /// Floats (utilities, curve points) are stored as IEEE-754 bit
    /// patterns for an exact round trip.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.cache.ckpt_save(w);
        self.profiler.ckpt_save(w);
        self.epoch.ckpt_save(w);
        w.bool(self.dip.is_some());
        if let Some(dip) = &self.dip {
            dip.ckpt_save(w);
        }
        w.u64(self.accesses);
        w.len64(self.partition_trace.len());
        for s in &self.partition_trace {
            w.u64(s.at_access);
            w.u32(s.tlb_ways);
            w.u32(s.total_ways);
        }
        w.bool(self.trace_enabled);
        w.u64(self.decisions);
        w.bool(self.last_decision.is_some());
        if let Some(d) = &self.last_decision {
            w.u32(d.data_ways);
            w.u32(d.tlb_ways);
            w.u64(d.utility.to_bits());
        }
        w.len64(self.last_curve.len());
        for (ways, utility) in &self.last_curve {
            w.u32(*ways);
            w.u64(utility.to_bits());
        }
    }

    /// Restores state written by [`ManagedCache::ckpt_save`]; geometry
    /// and management mode (via the DIP presence flag) must match.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.cache.ckpt_load(r)?;
        self.profiler.ckpt_load(r)?;
        self.epoch.ckpt_load(r)?;
        if r.bool()? != self.dip.is_some() {
            return Err(CkptError::Mismatch("dip controller presence"));
        }
        if let Some(dip) = &mut self.dip {
            dip.ckpt_load(r)?;
        }
        self.accesses = r.u64()?;
        let trace_len = r.len64()?;
        if trace_len
            .checked_mul(16)
            .is_none_or(|bytes| bytes > r.remaining())
        {
            return Err(CkptError::Corrupt("partition trace length"));
        }
        self.partition_trace.clear();
        for _ in 0..trace_len {
            self.partition_trace.push(PartitionSample {
                at_access: r.u64()?,
                tlb_ways: r.u32()?,
                total_ways: r.u32()?,
            });
        }
        self.trace_enabled = r.bool()?;
        self.decisions = r.u64()?;
        self.last_decision = if r.bool()? {
            Some(PartitionDecision {
                data_ways: r.u32()?,
                tlb_ways: r.u32()?,
                utility: f64::from_bits(r.u64()?),
            })
        } else {
            None
        };
        let curve_len = r.len64()?;
        if curve_len
            .checked_mul(12)
            .is_none_or(|bytes| bytes > r.remaining())
        {
            return Err(CkptError::Corrupt("utility curve length"));
        }
        self.last_curve.clear();
        for _ in 0..curve_len {
            let ways = r.u32()?;
            let utility = f64::from_bits(r.u64()?);
            self.last_curve.push((ways, utility));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn unmanaged_cache_never_partitions() {
        let mut m = ManagedCache::new(
            64,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Unmanaged,
            100,
            1,
        );
        for i in 0..1000 {
            m.access(line(i), EntryKind::Data, false, || Weights::UNIT);
        }
        assert_eq!(m.data_ways(), None);
        assert_eq!(m.accesses(), 1000);
    }

    #[test]
    fn static_partition_is_applied_immediately() {
        let m = ManagedCache::new(
            64,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Static { data_ways: 6 },
            100,
            1,
        );
        assert_eq!(m.data_ways(), Some(6));
    }

    #[test]
    fn csalt_partitions_at_epoch_boundary() {
        let mut m = ManagedCache::new(
            64,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Csalt,
            500,
            1,
        );
        assert_eq!(m.data_ways(), None);
        for i in 0..500u64 {
            // Hot data (reused), streaming TLB.
            m.access(line(i % 16), EntryKind::Data, false, || Weights::UNIT);
        }
        let dw = m.data_ways().expect("partitioned after epoch");
        assert!((1..8).contains(&dw));
    }

    #[test]
    fn data_heavy_epoch_grants_data_most_ways() {
        let mut m = ManagedCache::new(
            16,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Csalt,
            2000,
            1,
        );
        for i in 0..2000u64 {
            if i % 10 == 0 {
                // Streaming TLB: no reuse → no marginal utility.
                m.access(line(0x10000 + i), EntryKind::Tlb, false, || Weights::UNIT);
            } else {
                // Data with deep reuse across 6 ways per set.
                m.access(line(i % (16 * 6)), EntryKind::Data, false, || Weights::UNIT);
            }
        }
        assert_eq!(m.data_ways(), Some(7), "data deserves the maximum");
    }

    #[test]
    fn tlb_heavy_epoch_grants_tlb_most_ways() {
        let mut m = ManagedCache::new(
            16,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Csalt,
            2000,
            1,
        );
        for i in 0..2000u64 {
            if i % 10 == 0 {
                m.access(line(0x10000 + i), EntryKind::Data, false, || Weights::UNIT);
            } else {
                m.access(line(i % (16 * 6)), EntryKind::Tlb, false, || Weights::UNIT);
            }
        }
        // All TLB hits sit at stack depth 5, so every n ≤ 2 satisfies
        // them fully; the tie breaks to the largest such n.
        assert_eq!(m.data_ways(), Some(2), "tlb deserves the maximum");
    }

    #[test]
    fn weights_can_flip_a_balanced_decision() {
        let run = |weights: Weights| {
            let mut m = ManagedCache::new(
                16,
                8,
                ReplacementKind::TrueLru,
                CacheManagement::Csalt,
                4000,
                1,
            );
            for i in 0..4000u64 {
                // Data reuses at stack depth 3 (4 tags/set); TLB at
                // depth 5 (6 tags/set). Unweighted, satisfying data
                // (4 ways) or TLB (6 ways) yields equal utility and the
                // tie breaks to the data side; weighting TLB flips it.
                m.access(line(i % (16 * 4)), EntryKind::Data, false, || weights);
                m.access(
                    line(0x10000 + (i % (16 * 6))),
                    EntryKind::Tlb,
                    false,
                    || weights,
                );
            }
            m.data_ways().expect("partitioned")
        };
        let balanced = run(Weights::UNIT);
        let tlb_critical = run(Weights::new(1.0, 8.0));
        assert_eq!(balanced, 7, "tie breaks toward data");
        assert_eq!(tlb_critical, 2, "criticality weight flips to TLB");
    }

    #[test]
    fn partition_trace_records_epochs() {
        let mut m = ManagedCache::new(
            16,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Csalt,
            100,
            1,
        );
        m.enable_partition_trace();
        for i in 0..350u64 {
            m.access(line(i % 32), EntryKind::Data, false, || Weights::UNIT);
        }
        assert_eq!(m.partition_trace().len(), 3);
        for s in m.partition_trace() {
            assert_eq!(s.total_ways, 8);
            assert!(s.tlb_fraction() > 0.0 && s.tlb_fraction() < 1.0);
        }
    }

    #[test]
    fn dip_management_runs_set_dueling() {
        let mut m = ManagedCache::new(
            64,
            8,
            ReplacementKind::TrueLru,
            CacheManagement::Dip,
            1000,
            1,
        );
        // A thrashing pattern (working set slightly exceeding capacity)
        // should still be served without panicking and never partition.
        for i in 0..10_000u64 {
            m.access(line(i % 600), EntryKind::Data, false, || Weights::UNIT);
        }
        assert_eq!(m.data_ways(), None);
        assert!(m.cache().stats().total().accesses() == 10_000);
    }
}
