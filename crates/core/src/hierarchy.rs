//! The full memory system of Figure 4: per-core L1/L2 TLBs and L1/L2
//! data caches, a shared L3, the large L3 TLB (POM-TLB) in die-stacked
//! DRAM, the 2D page walker, and the CSALT partitioning machinery on the
//! L2/L3 data caches.
//!
//! One [`MemoryHierarchy`] instance serves all cores of the simulated
//! chip. Each program memory access is charged in two parts, mirroring
//! the paper's simulation methodology (§4.2):
//!
//! * **translation cycles** — blocking: the pipeline cannot retire past
//!   an unresolved translation, so these cycles are charged in full;
//! * **data cycles** — overlappable: the core model divides them by the
//!   configured memory-level parallelism.

use crate::managed::{CacheManagement, ManagedCache, PartitionSample};
use csalt_cache::{Cache, CacheStats, Occupancy};
use csalt_dram::{DramModel, DramStats};
use csalt_profiler::{CriticalityEstimator, CriticalityGauges, PartitionDecision, Weights};
use csalt_ptw::{
    FrameAllocator, GuestAddressSpace, HugePagePolicy, NativeWalker, NestedWalker, PteRead, WalkDim,
};
use csalt_telemetry::{ServedBy, StageSample, WalkStage};
use csalt_tlb::{PomTlb, SramTlb, Tsb};
use csalt_types::{
    Asid, CkptError, CkptReader, CkptWriter, ContextId, CoreId, Cycle, EntryKind, HitMissStats,
    L0Stats, LineAddr, MemAccess, PhysAddr, PhysFrame, SystemConfig, TranslationHint,
    TranslationScheme, VirtAddr,
};
use serde::{Deserialize, Serialize};

/// Machine-memory aperture for the TSB tables (outside program memory
/// and the POM-TLB aperture).
const TSB_BASE: u64 = 0x0000_7d00_0000_0000;
/// Entries per per-context TSB table (1 MiB per context at 16 B each —
/// the same order of capacity the POM-TLB grants each context).
const TSB_ENTRIES_PER_CTX: u64 = 1 << 16;

/// Per-access cycle charges returned by [`MemoryHierarchy::access`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCharge {
    /// Blocking address-translation cycles.
    pub translation_cycles: Cycle,
    /// Overlappable data-access cycles.
    pub data_cycles: Cycle,
    /// Whether translation was served by an L1 TLB.
    pub l1_tlb_hit: bool,
    /// Whether translation was served at or above the L2 TLB.
    pub l2_tlb_hit: bool,
    /// Whether a page walk was required.
    pub walked: bool,
}

/// One pre-staged access of a commit block: everything
/// [`MemoryHierarchy::access_hinted`] needs, gathered ahead of time so
/// the engines can commit a whole block back-to-back. Defined here
/// (rather than reusing the pipeline crate's staged record) because the
/// hierarchy is upstream of the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct BlockAccess {
    /// Issuing core.
    pub core: CoreId,
    /// Scheduled context.
    pub ctx: ContextId,
    /// The program access.
    pub acc: MemAccess,
    /// Prepacked TLB keys for the access under `ctx`'s ASID.
    pub hint: TranslationHint,
}

/// Access-counter readings of every level a request can touch, used to
/// attribute a traced access to the level that served it.
#[derive(Debug, Clone, Copy)]
struct ServedProbe {
    l1d: u64,
    l2: u64,
    l3: u64,
    ddr: u64,
    stacked: u64,
}

/// Serializable summary of every component's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchySnapshot {
    /// Aggregate L1 TLB (4 KiB + 2 MiB) hits/misses across cores.
    pub l1_tlb: HitMissStats,
    /// Aggregate L2 TLB hits/misses across cores.
    pub l2_tlb: HitMissStats,
    /// Aggregate L1 data-cache statistics.
    pub l1d: CacheStats,
    /// Aggregate (all cores) L2 statistics.
    pub l2: CacheStats,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// POM-TLB array statistics, for schemes that have one.
    pub pom: Option<HitMissStats>,
    /// TSB statistics, for the TSB scheme.
    pub tsb: Option<HitMissStats>,
    /// Completed page walks.
    pub page_walks: u64,
    /// Cycles spent inside page walks.
    pub page_walk_cycles: u64,
    /// Total blocking translation cycles.
    pub translation_cycles: u64,
    /// Total overlappable data cycles.
    pub data_cycles: u64,
    /// Program accesses served.
    pub accesses: u64,
    /// Off-chip DRAM statistics.
    pub ddr: DramStats,
    /// Die-stacked DRAM statistics.
    pub stacked: DramStats,
}

impl HierarchySnapshot {
    /// Page walks per program access avoided thanks to the large TLB:
    /// `1 - walks / l2_tlb_misses` (Figure 8's metric).
    pub fn walk_elimination(&self) -> f64 {
        if self.l2_tlb.misses == 0 {
            return 0.0;
        }
        1.0 - self.page_walks as f64 / self.l2_tlb.misses as f64
    }

    /// Average page-walk cycles per walk (Table 1's metric is per L2 TLB
    /// miss in the conventional scheme, where every miss walks).
    pub fn walk_cycles_per_walk(&self) -> f64 {
        if self.page_walks == 0 {
            0.0
        } else {
            self.page_walk_cycles as f64 / self.page_walks as f64
        }
    }

    /// Component-wise counter delta relative to an `earlier` snapshot of
    /// the same hierarchy — the payload of one telemetry epoch record.
    ///
    /// All subtraction is saturating (counters are monotonic between
    /// resets); summing the deltas of every epoch reproduces the final
    /// snapshot exactly, a property the workspace proptests check.
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        let opt_delta = |now: Option<HitMissStats>, then: Option<HitMissStats>| match (now, then) {
            (Some(a), Some(b)) => Some(a - b),
            (a, None) => a,
            (None, Some(_)) => None,
        };
        Self {
            l1_tlb: self.l1_tlb - earlier.l1_tlb,
            l2_tlb: self.l2_tlb - earlier.l2_tlb,
            l1d: self.l1d.delta_since(&earlier.l1d),
            l2: self.l2.delta_since(&earlier.l2),
            l3: self.l3.delta_since(&earlier.l3),
            pom: opt_delta(self.pom, earlier.pom),
            tsb: opt_delta(self.tsb, earlier.tsb),
            page_walks: self.page_walks.saturating_sub(earlier.page_walks),
            page_walk_cycles: self
                .page_walk_cycles
                .saturating_sub(earlier.page_walk_cycles),
            translation_cycles: self
                .translation_cycles
                .saturating_sub(earlier.translation_cycles),
            data_cycles: self.data_cycles.saturating_sub(earlier.data_cycles),
            accesses: self.accesses.saturating_sub(earlier.accesses),
            ddr: self.ddr.delta_since(&earlier.ddr),
            stacked: self.stacked.delta_since(&earlier.stacked),
        }
    }

    /// Adds `delta`'s counters into `self` — the inverse of
    /// [`Self::delta_since`]. Sampled-window runs sum each measured
    /// window's delta into one run snapshot with this, so fast-forward
    /// activity between the windows never reaches the reported counters.
    pub fn accumulate(&mut self, delta: &Self) {
        let opt_add = |a: &mut Option<HitMissStats>, b: Option<HitMissStats>| match (a.as_mut(), b)
        {
            (Some(a), Some(b)) => *a += b,
            (None, Some(b)) => *a = Some(b),
            (_, None) => {}
        };
        let cache_add = |a: &mut CacheStats, b: &CacheStats| {
            a.data += b.data;
            a.tlb += b.tlb;
            a.fills += b.fills;
            a.evictions += b.evictions;
            a.writebacks += b.writebacks;
        };
        let dram_add = |a: &mut DramStats, b: &DramStats| {
            a.accesses += b.accesses;
            a.row_hits += b.row_hits;
            a.row_closed += b.row_closed;
            a.row_conflicts += b.row_conflicts;
            a.writes += b.writes;
            a.total_latency += b.total_latency;
        };
        self.l1_tlb += delta.l1_tlb;
        self.l2_tlb += delta.l2_tlb;
        cache_add(&mut self.l1d, &delta.l1d);
        cache_add(&mut self.l2, &delta.l2);
        cache_add(&mut self.l3, &delta.l3);
        opt_add(&mut self.pom, delta.pom);
        opt_add(&mut self.tsb, delta.tsb);
        self.page_walks += delta.page_walks;
        self.page_walk_cycles += delta.page_walk_cycles;
        self.translation_cycles += delta.translation_cycles;
        self.data_cycles += delta.data_cycles;
        self.accesses += delta.accesses;
        dram_add(&mut self.ddr, &delta.ddr);
        dram_add(&mut self.stacked, &delta.stacked);
    }
}

/// Per-context translation machinery.
// One instance lives inline per hierarchy and is matched on every
// translation; boxing the walker to shrink the enum would trade a few
// hundred resident bytes for a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
enum Translator {
    Virtualized(GuestAddressSpace),
    Native(NativeWalker),
}

/// The chip's complete memory system under one translation scheme.
pub struct MemoryHierarchy {
    cfg: SystemConfig,
    scheme: TranslationScheme,
    huge: HugePagePolicy,
    virtualized: bool,

    l1d: Vec<Cache>,
    l2: Vec<ManagedCache>,
    l3: ManagedCache,
    l1_tlb_4k: Vec<SramTlb>,
    l1_tlb_2m: Vec<SramTlb>,
    l2_tlb: Vec<SramTlb>,

    pom: Option<PomTlb>,
    tsb: Option<Tsb>,
    nested: NestedWalker,
    contexts: Vec<Translator>,
    host_alloc: FrameAllocator,
    /// Reused PTE-read buffer: every page walk appends into it and it
    /// is cleared before reuse, so the steady-state access path never
    /// allocates.
    walk_scratch: Vec<PteRead>,

    ddr: DramModel,
    stacked: DramModel,

    crit_l2: CriticalityEstimator,
    crit_l3: CriticalityEstimator,

    accesses: u64,
    crit_samples: u64,
    translation_cycles: u64,
    data_cycles: u64,
    page_walks: u64,
    page_walk_cycles: u64,

    /// Stage-attribution sink for the access currently being traced;
    /// `None` (the steady state) keeps the hot path to one branch per
    /// potential stage push.
    trace: Option<Vec<StageSample>>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `scheme`.
    ///
    /// * `virtualized` — VM contexts with 2D walks when `true`, native
    ///   address spaces with 1D walks otherwise (Figure 12).
    /// * `huge` — huge-page policy for demand mapping.
    /// * `profiler_interval` — stack-distance shadow-directory set
    ///   sampling (1 = every set).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not validate; see
    /// [`MemoryHierarchy::try_new`] for the fallible form.
    pub fn new(
        cfg: &SystemConfig,
        scheme: TranslationScheme,
        virtualized: bool,
        huge: HugePagePolicy,
        profiler_interval: u64,
    ) -> Self {
        Self::try_new(cfg, scheme, virtualized, huge, profiler_interval)
            .expect("system config must be valid")
    }

    /// Fallible form of [`MemoryHierarchy::new`]: returns the first
    /// CSALT-Axxx configuration violation instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`csalt_types::ConfigError`] when `cfg` fails a static
    /// invariant (`SystemConfig::validate`).
    pub fn try_new(
        cfg: &SystemConfig,
        scheme: TranslationScheme,
        virtualized: bool,
        huge: HugePagePolicy,
        profiler_interval: u64,
    ) -> Result<Self, csalt_types::ConfigError> {
        cfg.validate()?;
        let management = match scheme {
            TranslationScheme::CsaltD
            | TranslationScheme::CsaltCd
            | TranslationScheme::TsbCsalt => CacheManagement::Csalt,
            TranslationScheme::Dip | TranslationScheme::Drrip => CacheManagement::Dip,
            TranslationScheme::StaticPartition { data_ways } => {
                CacheManagement::Static { data_ways }
            }
            _ => CacheManagement::Unmanaged,
        };
        let l2_management = match management {
            // A static split sized for the 16-way L3 would starve the
            // 4-way L2; scale it proportionally.
            CacheManagement::Static { data_ways } => CacheManagement::Static {
                data_ways: (data_ways * cfg.l2.ways / cfg.l3.ways).clamp(1, cfg.l2.ways - 1),
            },
            m => m,
        };

        // DRRIP carries its own storage policy regardless of the
        // configured recency policy.
        let managed_replacement = if matches!(scheme, TranslationScheme::Drrip) {
            csalt_types::ReplacementKind::Rrip
        } else {
            cfg.replacement
        };
        let cores = cfg.cores as usize;
        let mk_l2 = || {
            ManagedCache::new(
                cfg.l2.sets(),
                cfg.l2.ways,
                managed_replacement,
                l2_management,
                cfg.epoch_accesses,
                profiler_interval,
            )
        };
        let ddr = DramModel::new(cfg.ddr, cfg.core_ghz);
        let stacked = DramModel::new(cfg.die_stacked, cfg.core_ghz);
        let crit_l2 = CriticalityEstimator::new(
            cfg.l2.latency,
            ddr.best_case_latency(),
            stacked.best_case_latency(),
        );
        let crit_l3 = CriticalityEstimator::new(
            cfg.l3.latency,
            ddr.best_case_latency(),
            stacked.best_case_latency(),
        );

        Ok(Self {
            l1d: (0..cores)
                .map(|_| Cache::from_geometry(&cfg.l1d, cfg.replacement))
                .collect(),
            l2: (0..cores).map(|_| mk_l2()).collect(),
            l3: ManagedCache::new(
                cfg.l3.sets(),
                cfg.l3.ways,
                managed_replacement,
                management,
                cfg.epoch_accesses,
                profiler_interval,
            ),
            l1_tlb_4k: (0..cores).map(|_| SramTlb::new(cfg.l1_tlb_4k)).collect(),
            l1_tlb_2m: (0..cores).map(|_| SramTlb::new(cfg.l1_tlb_2m)).collect(),
            l2_tlb: (0..cores).map(|_| SramTlb::new(cfg.l2_tlb)).collect(),
            pom: scheme.uses_pom_tlb().then(|| PomTlb::new(cfg.pom_tlb)),
            tsb: matches!(scheme, TranslationScheme::Tsb | TranslationScheme::TsbCsalt)
                .then(|| Tsb::new(TSB_ENTRIES_PER_CTX, TSB_BASE, virtualized)),
            nested: NestedWalker::with_levels(cfg.psc, cfg.pt_levels),
            contexts: Vec::new(),
            // 35 reads is the 5-level nested worst case; 64 never grows.
            walk_scratch: Vec::with_capacity(64),
            // Program + page-table memory: everything below the TSB and
            // POM apertures. 256 GiB is far beyond any experiment's
            // footprint; allocation is lazy.
            host_alloc: FrameAllocator::new(0, 256 << 30),
            ddr,
            stacked,
            crit_l2,
            crit_l3,
            accesses: 0,
            crit_samples: 0,
            translation_cycles: 0,
            data_cycles: 0,
            page_walks: 0,
            page_walk_cycles: 0,
            cfg: cfg.clone(),
            scheme,
            huge,
            virtualized,
            trace: None,
        })
    }

    /// Registers a new schedulable context (one VM workload instance),
    /// returning its id. The context's ASID is `id + 1`.
    pub fn add_context(&mut self) -> ContextId {
        let id = ContextId::new(self.contexts.len() as u32);
        let asid = Asid::new(id.raw() as u16 + 1);
        let t = if self.virtualized {
            Translator::Virtualized(GuestAddressSpace::with_levels(
                asid,
                1 << 40,
                64 << 30,
                self.huge,
                &mut self.host_alloc,
                self.cfg.pt_levels,
            ))
        } else {
            Translator::Native(NativeWalker::with_levels(
                asid,
                &mut self.host_alloc,
                self.huge,
                self.cfg.psc,
                self.cfg.pt_levels,
            ))
        };
        self.contexts.push(t);
        id
    }

    /// The ASID assigned to a context (contexts get sequential ASIDs
    /// starting at 1; ASID 0 is never issued). Public so the pipeline's
    /// producer stage can precompute packed TLB keys for a context
    /// without holding a hierarchy reference.
    pub fn asid_of(&self, ctx: ContextId) -> Asid {
        Asid::new(ctx.raw() as u16 + 1)
    }

    /// Serves one program memory access, returning its cycle charges.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `ctx` is out of range.
    pub fn access(&mut self, core: CoreId, ctx: ContextId, acc: MemAccess) -> AccessCharge {
        let hint = TranslationHint::compute(acc.vaddr, self.asid_of(ctx));
        self.access_hinted(core, ctx, acc, &hint)
    }

    /// [`MemoryHierarchy::access`] with the state-independent
    /// precomputation (packed TLB keys) already done — the commit-stage
    /// entry point of the pipelined execution mode, and the single
    /// implementation `access` delegates to, so both modes charge
    /// bit-identical cycles.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `ctx` is out of range; debug builds also
    /// panic if `hint` was not computed from this access and context.
    pub fn access_hinted(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        acc: MemAccess,
        hint: &TranslationHint,
    ) -> AccessCharge {
        self.access_inner::<true>(core, ctx, acc, hint)
    }

    /// State-only access: fills, evictions, replacement stamps,
    /// page-table population and TLB churn happen exactly as in
    /// [`MemoryHierarchy::access_hinted`] — the two paths are one
    /// monomorphized implementation — but no cycles are charged, the
    /// DRAM models are never touched (no row state, no latency
    /// samples), and the criticality estimators see nothing, so the
    /// CSALT-CD schemes degrade to unit weights while fast-forwarding.
    /// Component hit/miss counters still advance (they are part of the
    /// component state machines); callers measuring a window must
    /// snapshot-delta around it.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `ctx` is out of range; debug builds also
    /// panic if `hint` was not computed from this access and context.
    pub fn access_functional(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        acc: MemAccess,
        hint: &TranslationHint,
    ) {
        let _ = self.access_inner::<false>(core, ctx, acc, hint);
    }

    /// Commits a gathered block of accesses through the timed path,
    /// appending one [`AccessCharge`] per record to `charges` in block
    /// order. Exactly equivalent to calling
    /// [`MemoryHierarchy::access_hinted`] per record — the batching
    /// exists so the engines touch their bookkeeping (and the pipeline
    /// ring its atomics) once per block instead of once per access.
    ///
    /// # Panics
    ///
    /// As [`MemoryHierarchy::access_hinted`], per record.
    pub fn access_block_hinted(&mut self, block: &[BlockAccess], charges: &mut Vec<AccessCharge>) {
        for b in block {
            charges.push(self.access_inner::<true>(b.core, b.ctx, b.acc, &b.hint));
        }
    }

    /// Commits a gathered block through the functional (state-only)
    /// path; the block-order equivalent of
    /// [`MemoryHierarchy::access_functional`] per record.
    ///
    /// # Panics
    ///
    /// As [`MemoryHierarchy::access_functional`], per record.
    pub fn access_block_functional(&mut self, block: &[BlockAccess]) {
        for b in block {
            let _ = self.access_inner::<false>(b.core, b.ctx, b.acc, &b.hint);
        }
    }

    /// Enables or disables every component's L0 hit-way memo. Results
    /// are bit-identical either way — the memo only skips set scans on
    /// repeat hits — so this is a pure performance switch.
    pub fn set_l0_memo(&mut self, enabled: bool) {
        for c in &mut self.l1d {
            c.set_l0_enabled(enabled);
        }
        for c in &mut self.l2 {
            c.set_l0_enabled(enabled);
        }
        self.l3.set_l0_enabled(enabled);
        for t in self
            .l1_tlb_4k
            .iter_mut()
            .chain(self.l1_tlb_2m.iter_mut())
            .chain(self.l2_tlb.iter_mut())
        {
            t.set_l0_enabled(enabled);
        }
        if let Some(p) = &mut self.pom {
            p.set_l0_enabled(enabled);
        }
        if let Some(t) = &mut self.tsb {
            t.set_l0_enabled(enabled);
        }
    }

    /// Summed L0 memo counters over every component (telemetry /
    /// progress reporting; reset together with the other statistics by
    /// [`MemoryHierarchy::reset_stats`]).
    pub fn l0_stats(&self) -> L0Stats {
        let mut s = L0Stats::default();
        for c in &self.l1d {
            s = s.merged(c.l0_stats());
        }
        for c in &self.l2 {
            s = s.merged(c.l0_stats());
        }
        s = s.merged(self.l3.l0_stats());
        for t in self
            .l1_tlb_4k
            .iter()
            .chain(self.l1_tlb_2m.iter())
            .chain(self.l2_tlb.iter())
        {
            s = s.merged(t.l0_stats());
        }
        if let Some(p) = &self.pom {
            s = s.merged(p.l0_stats());
        }
        if let Some(t) = &self.tsb {
            s = s.merged(t.l0_stats());
        }
        s
    }

    /// Context-switch hook: drops the switching core's private memos and
    /// the shared components' memos. CSALT's premise is that switches
    /// destroy translation locality, and the memo keys the paper's ASID
    /// recycling could alias are exactly the ones dropped here — the
    /// keys themselves are ASID-tagged, so this is hygiene, not a
    /// correctness requirement for live ASIDs.
    pub fn l0_note_context_switch(&mut self, core: usize) {
        self.l1d[core].l0_invalidate();
        self.l2[core].l0_invalidate();
        self.l3.l0_invalidate();
        self.l1_tlb_4k[core].l0_invalidate();
        self.l1_tlb_2m[core].l0_invalidate();
        self.l2_tlb[core].l0_invalidate();
        if let Some(p) = &mut self.pom {
            p.l0_invalidate();
        }
        if let Some(t) = &mut self.tsb {
            t.l0_invalidate();
        }
    }

    /// The single implementation behind the timed and functional access
    /// paths, monomorphized on `TIMED` so the functional instantiation
    /// compiles with every cycle account, DRAM call and criticality
    /// update stripped rather than branched around.
    fn access_inner<const TIMED: bool>(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        acc: MemAccess,
        hint: &TranslationHint,
    ) -> AccessCharge {
        assert!(core.index() < self.l1d.len(), "core out of range");
        assert!(ctx.index() < self.contexts.len(), "context out of range");
        debug_assert_eq!(
            *hint,
            TranslationHint::compute(acc.vaddr, self.asid_of(ctx)),
            "stale translation hint for this access/context"
        );
        self.accesses += 1;
        let (frame, translation_cycles, l1_hit, l2_hit, walked) =
            self.translate::<TIMED>(core, ctx, acc.vaddr, hint);
        let pa = frame.translate(acc.vaddr);
        let probe = self
            .trace
            .is_some()
            .then(|| self.served_probe(core.index()));
        let data_cycles = self.data_access::<TIMED>(core.index(), pa.line(), acc.ty.is_write());
        if let Some(p) = probe {
            let served = self.served_since(core.index(), &p);
            self.push_stage(WalkStage::Data, 0, data_cycles, None, served);
        }
        if TIMED {
            self.translation_cycles += translation_cycles;
            self.data_cycles += data_cycles;
        }
        // Conservation laws the counters must satisfy after every access
        // (debug builds only; CSALT-A102/A103 check the same at run end).
        debug_assert!(
            self.page_walk_cycles <= self.translation_cycles,
            "walk cycles {} exceed translation cycles {}",
            self.page_walk_cycles,
            self.translation_cycles
        );
        debug_assert!(
            self.page_walks <= self.l2_tlb.iter().map(|t| t.stats().misses).sum::<u64>(),
            "page walks {} exceed cumulative L2 TLB misses",
            self.page_walks
        );
        AccessCharge {
            translation_cycles,
            data_cycles,
            l1_tlb_hit: l1_hit,
            l2_tlb_hit: l1_hit || l2_hit,
            walked,
        }
    }

    /// Serves one access while recording its full path through the
    /// hierarchy as per-stage cycle attributions (telemetry walk traces).
    ///
    /// The returned stage cycles always sum to
    /// `translation_cycles + data_cycles`: every blocking cycle the
    /// access is charged is attributed to exactly one stage, and
    /// non-blocking work (TLB install stores, dirty writebacks) appears
    /// in no stage because it is charged to no access.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `ctx` is out of range.
    pub fn access_traced(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        acc: MemAccess,
    ) -> (AccessCharge, Vec<StageSample>) {
        self.trace = Some(Vec::with_capacity(8));
        let charge = self.access(core, ctx, acc);
        let stages = self.trace.take().unwrap_or_default();
        debug_assert_eq!(
            stages.iter().map(|s| s.cycles).sum::<u64>(),
            charge.translation_cycles + charge.data_cycles,
            "stage attribution must be exhaustive"
        );
        (charge, stages)
    }

    /// Appends a stage sample if an access trace is being collected.
    fn push_stage(
        &mut self,
        stage: WalkStage,
        index: u32,
        cycles: Cycle,
        hit: Option<bool>,
        served_by: Option<ServedBy>,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(StageSample {
                stage,
                index,
                cycles,
                hit,
                served_by,
            });
        }
    }

    /// Point-in-time access counters of every level a request can touch,
    /// taken before an access so [`Self::served_since`] can attribute it.
    fn served_probe(&self, core: usize) -> ServedProbe {
        ServedProbe {
            l1d: self.l1d[core].stats().total().accesses(),
            l2: self.l2[core].cache().stats().total().accesses(),
            l3: self.l3.cache().stats().total().accesses(),
            ddr: self.ddr.stats().accesses,
            stacked: self.stacked.stats().accesses,
        }
    }

    /// Deepest memory level whose access counter advanced since `p` was
    /// taken — i.e. the level that served the request. Writebacks riding
    /// on the same access can deepen the answer; attribution is
    /// best-effort, not part of the cycle accounting.
    fn served_since(&self, core: usize, p: &ServedProbe) -> Option<ServedBy> {
        let q = self.served_probe(core);
        if q.stacked > p.stacked {
            Some(ServedBy::StackedDram)
        } else if q.ddr > p.ddr {
            Some(ServedBy::Ddr)
        } else if q.l3 > p.l3 {
            Some(ServedBy::L3)
        } else if q.l2 > p.l2 {
            Some(ServedBy::L2)
        } else if q.l1d > p.l1d {
            Some(ServedBy::L1d)
        } else {
            None
        }
    }

    /// Resolves `va` to a frame, charging translation cycles. The SRAM
    /// TLB levels are probed through `hint`'s prepacked keys — computed
    /// either inline (`access`) or ahead of time on a pipeline producer
    /// thread (`access_hinted`); one code path serves both.
    fn translate<const TIMED: bool>(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        va: VirtAddr,
        hint: &TranslationHint,
    ) -> (PhysFrame, Cycle, bool, bool, bool) {
        let asid = self.asid_of(ctx);
        let c = core.index();
        let probe_2m = self.huge.fraction_2m > 0.0;

        // L1 TLBs (looked up in parallel with the L1 data cache: a hit
        // adds no visible latency).
        if let Some(f) = self.l1_tlb_4k[c].lookup_prepacked(hint.packed_4k) {
            self.push_stage(WalkStage::L1Tlb, 0, 0, Some(true), None);
            return (f, 0, true, false, false);
        }
        if probe_2m {
            if let Some(f) = self.l1_tlb_2m[c].lookup_prepacked(hint.packed_2m) {
                self.push_stage(WalkStage::L1Tlb, 0, 0, Some(true), None);
                return (f, 0, true, false, false);
            }
        }
        self.push_stage(WalkStage::L1Tlb, 0, 0, Some(false), None);

        // Unified L2 TLB.
        let mut cycles = self.cfg.l2_tlb.latency;
        let l2_result = self.l2_tlb[c].lookup_prepacked(hint.packed_4k).or_else(|| {
            if probe_2m {
                self.l2_tlb[c].lookup_prepacked(hint.packed_2m)
            } else {
                None
            }
        });
        self.push_stage(WalkStage::L2Tlb, 0, cycles, Some(l2_result.is_some()), None);
        if let Some(f) = l2_result {
            self.install_l1(c, va, asid, f);
            return (f, cycles, false, true, false);
        }

        // L2 TLB miss: the translation request enters the memory system.
        let (page, frame, walked) = match self.scheme {
            TranslationScheme::Conventional => {
                let (page, frame, walk_cycles) = self.page_walk::<TIMED>(ctx, va);
                cycles += walk_cycles;
                (page, frame, true)
            }
            TranslationScheme::Tsb | TranslationScheme::TsbCsalt => {
                let (page, frame, tsb_cycles, walked) =
                    self.tsb_translate::<TIMED>(core, ctx, va, hint);
                cycles += tsb_cycles;
                (page, frame, walked)
            }
            _ => {
                let (page, frame, pom_cycles, walked) =
                    self.pom_translate::<TIMED>(core, ctx, va, hint);
                cycles += pom_cycles;
                (page, frame, walked)
            }
        };

        // Install into the SRAM TLB levels.
        self.l2_tlb[c].insert(page, asid, frame);
        match page.size() {
            csalt_types::PageSize::Size4K => self.l1_tlb_4k[c].insert(page, asid, frame),
            _ => self.l1_tlb_2m[c].insert(page, asid, frame),
        }
        (frame, cycles, false, false, walked)
    }

    fn install_l1(&mut self, core: usize, va: VirtAddr, asid: Asid, frame: PhysFrame) {
        let page = va.page(frame.size());
        match frame.size() {
            csalt_types::PageSize::Size4K => self.l1_tlb_4k[core].insert(page, asid, frame),
            _ => self.l1_tlb_2m[core].insert(page, asid, frame),
        }
    }

    /// POM-TLB translation: one cacheable access to the entry's home
    /// line; on an array miss, a page walk followed by an insert. The
    /// array is probed through `hint`'s prepacked keys, same as the SRAM
    /// levels.
    fn pom_translate<const TIMED: bool>(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        va: VirtAddr,
        hint: &TranslationHint,
    ) -> (csalt_types::VirtPage, PhysFrame, Cycle, bool) {
        let asid = self.asid_of(ctx);
        let probe_2m = self.huge.fraction_2m > 0.0;
        let mut cycles = 0;

        let sizes: &[(csalt_types::PageSize, u64)] = if probe_2m {
            &[
                (csalt_types::PageSize::Size4K, hint.packed_4k),
                (csalt_types::PageSize::Size2M, hint.packed_2m),
            ]
        } else {
            &[(csalt_types::PageSize::Size4K, hint.packed_4k)]
        };
        for (i, &(size, packed)) in sizes.iter().enumerate() {
            let page = va.page(size);
            let (lookup_line, found) = {
                let pom = self.pom.as_mut().expect("POM scheme has a POM-TLB");
                let r = pom.lookup_prepacked(packed);
                (r.line, r.frame)
            };
            // The lookup is one memory access to the home line; the data
            // caches may hold it.
            let probe = self
                .trace
                .is_some()
                .then(|| self.served_probe(core.index()));
            let lookup_cycles =
                self.l2_access::<TIMED>(core.index(), lookup_line, EntryKind::Tlb, false);
            cycles += lookup_cycles;
            if let Some(p) = probe {
                let served = self.served_since(core.index(), &p);
                self.push_stage(
                    WalkStage::PomLookup,
                    i as u32,
                    lookup_cycles,
                    Some(found.is_some()),
                    served,
                );
            }
            if let Some(frame) = found {
                return (page, frame, cycles, false);
            }
        }

        // Large TLB miss: walk and install.
        let (page, frame, walk_cycles) = self.page_walk::<TIMED>(ctx, va);
        cycles += walk_cycles;
        let write_line = self
            .pom
            .as_mut()
            .expect("POM scheme has a POM-TLB")
            .insert(page, asid, frame);
        // The install is a store: it updates the caches but does not
        // block the pipeline.
        self.l2_access::<TIMED>(core.index(), write_line, EntryKind::Tlb, true);
        (page, frame, cycles, true)
    }

    /// TSB translation: the software buffer's dependent lookups, then a
    /// walk + reload on a miss.
    fn tsb_translate<const TIMED: bool>(
        &mut self,
        core: CoreId,
        ctx: ContextId,
        va: VirtAddr,
        hint: &TranslationHint,
    ) -> (csalt_types::VirtPage, PhysFrame, Cycle, bool) {
        let asid = self.asid_of(ctx);
        // The TSB stores entries at the terminal page size; probe 4K
        // (the dominant size; a 2M-policy miss simply walks). The probe
        // goes through the hint's prepacked 4K key.
        let page = va.page(csalt_types::PageSize::Size4K);
        let (frame, accesses) = {
            let tsb = self.tsb.as_mut().expect("TSB scheme has a TSB");
            let r = tsb.lookup_prepacked(hint.packed_4k);
            (r.frame, r.accesses)
        };
        let mut cycles = 0;
        let hit = frame.is_some();
        for (i, &line) in accesses.iter().enumerate() {
            let probe = self
                .trace
                .is_some()
                .then(|| self.served_probe(core.index()));
            let c = self.l2_access::<TIMED>(core.index(), line, EntryKind::Tlb, false);
            cycles += c;
            if let Some(p) = probe {
                let served = self.served_since(core.index(), &p);
                self.push_stage(WalkStage::TsbLookup, i as u32, c, Some(hit), served);
            }
        }
        if let Some(f) = frame {
            return (page, f, cycles, false);
        }
        let (page, frame, walk_cycles) = self.page_walk::<TIMED>(ctx, va);
        cycles += walk_cycles;
        let write_line = self
            .tsb
            .as_mut()
            .expect("TSB scheme has a TSB")
            .insert(page, asid, frame);
        self.l2_access::<TIMED>(core.index(), write_line, EntryKind::Tlb, true);
        (page, frame, cycles, true)
    }

    /// Runs the page walk for `va`, charging every PTE read through the
    /// cache hierarchy (starting at the walker's L2 port).
    fn page_walk<const TIMED: bool>(
        &mut self,
        ctx: ContextId,
        va: VirtAddr,
    ) -> (csalt_types::VirtPage, PhysFrame, Cycle) {
        // Take the scratch buffer so the walkers can borrow `self`
        // mutably; put back below (keeps its capacity — no allocation).
        let mut accesses = std::mem::take(&mut self.walk_scratch);
        accesses.clear();
        let outcome = {
            let Self {
                contexts,
                nested,
                host_alloc,
                ..
            } = self;
            match &mut contexts[ctx.index()] {
                Translator::Virtualized(space) => {
                    nested.walk_into(space, va, host_alloc, &mut accesses)
                }
                Translator::Native(walker) => walker.walk_into(va, host_alloc, &mut accesses),
            }
        };
        let mut cycles = 0;
        // PTE reads are dependent: charge them sequentially. Walks issue
        // from the walker's cache port on the requesting core's L2.
        let core = (ctx.raw() as usize) % self.l1d.len();
        let mut guest_idx = 0u32;
        let mut host_idx = 0u32;
        for pte in &accesses {
            let probe = self.trace.is_some().then(|| self.served_probe(core));
            let c = self.l2_access::<TIMED>(core, pte.addr.line(), EntryKind::Tlb, false);
            cycles += c;
            if let Some(p) = probe {
                let served = self.served_since(core, &p);
                let (stage, index) = match pte.dim {
                    WalkDim::Guest => {
                        guest_idx += 1;
                        (WalkStage::GuestPte, guest_idx - 1)
                    }
                    WalkDim::Host => {
                        host_idx += 1;
                        (WalkStage::HostPte, host_idx - 1)
                    }
                };
                self.push_stage(stage, index, c, None, served);
            }
        }
        self.walk_scratch = accesses;
        self.page_walks += 1;
        if TIMED {
            self.page_walk_cycles += cycles;
        }
        (outcome.page, outcome.frame, cycles)
    }

    /// A data access through L1 → L2 → L3 → DRAM.
    fn data_access<const TIMED: bool>(
        &mut self,
        core: usize,
        line: LineAddr,
        write: bool,
    ) -> Cycle {
        let out = self.l1d[core].access(line, EntryKind::Data, write);
        if out.hit {
            return self.cfg.l1d.latency;
        }
        let mut cycles =
            self.cfg.l1d.latency + self.l2_access::<TIMED>(core, line, EntryKind::Data, write);
        if let Some(ev) = out.evicted {
            if ev.dirty {
                // Writeback is off the critical path.
                self.l2_access::<TIMED>(core, ev.line, ev.kind, true);
            }
        }
        cycles = cycles.max(self.cfg.l1d.latency);
        cycles
    }

    /// An access at the L2 level (and below), returning its latency.
    fn l2_access<const TIMED: bool>(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: EntryKind,
        write: bool,
    ) -> Cycle {
        let out = {
            // Split borrows so the weight closure (evaluated only at
            // epoch boundaries) can read the estimator while the cache
            // is borrowed mutably. The functional path always uses unit
            // weights: the estimators are fed by DRAM latencies, which
            // state-only execution never produces.
            let Self {
                l2,
                crit_l2,
                scheme,
                ..
            } = self;
            let scheme = *scheme;
            l2[core].access(line, kind, write, || match scheme {
                TranslationScheme::CsaltCd | TranslationScheme::TsbCsalt if TIMED => {
                    crit_l2.weights()
                }
                _ => Weights::UNIT,
            })
        };
        if out.hit {
            return self.cfg.l2.latency;
        }
        let mut cycles = self.cfg.l2.latency + self.l3_access::<TIMED>(line, kind, write);
        if let Some(ev) = out.evicted {
            if ev.dirty {
                self.l3_access::<TIMED>(ev.line, ev.kind, true);
            }
        }
        cycles = cycles.max(self.cfg.l2.latency);
        cycles
    }

    /// An access at the shared L3 (and memory), returning its latency.
    fn l3_access<const TIMED: bool>(
        &mut self,
        line: LineAddr,
        kind: EntryKind,
        write: bool,
    ) -> Cycle {
        let out = {
            let Self {
                l3,
                crit_l3,
                scheme,
                ..
            } = self;
            let scheme = *scheme;
            l3.access(line, kind, write, || match scheme {
                TranslationScheme::CsaltCd | TranslationScheme::TsbCsalt if TIMED => {
                    crit_l3.weights()
                }
                _ => Weights::UNIT,
            })
        };
        if out.hit {
            return self.cfg.l3.latency;
        }
        // The functional path charges no DRAM cycles and feeds no
        // criticality samples, but it must still open the same rows a
        // timed run would: the measured phase inherits row-buffer state
        // across warmup, and a cold bank would make the first measured
        // access a row-closed miss instead of the hit/conflict the
        // timed warmup leaves behind.
        if !TIMED {
            self.mem_touch(line.base());
            if let Some(ev) = out.evicted {
                if ev.dirty {
                    self.mem_touch(ev.line.base());
                }
            }
            return 0;
        }
        let mem = self.mem_access(line.base(), false);
        if let Some(ev) = out.evicted {
            if ev.dirty {
                self.mem_access(ev.line.base(), true);
            }
        }
        self.cfg.l3.latency + mem
    }

    /// Routes a state-only row-buffer touch to the same device
    /// `mem_access` would pick, without latency, statistics, or
    /// criticality samples. Functional-path counterpart of
    /// [`Self::mem_access`].
    fn mem_touch(&mut self, pa: PhysAddr) {
        if self.pom.as_ref().is_some_and(|p| p.owns(pa)) {
            self.stacked.touch(pa);
        } else {
            self.ddr.touch(pa);
        }
    }

    /// Routes a memory access to DDR or the die-stacked device by
    /// aperture and feeds the criticality estimators.
    fn mem_access(&mut self, pa: PhysAddr, write: bool) -> Cycle {
        let in_pom = self.pom.as_ref().is_some_and(|p| p.owns(pa));
        let lat = if in_pom {
            let l = self.stacked.access(pa, write);
            self.crit_l2.record_pom_tlb(l);
            self.crit_l3.record_pom_tlb(l);
            l
        } else {
            let l = self.ddr.access(pa, write);
            self.crit_l2.record_dram(l);
            self.crit_l3.record_dram(l);
            l
        };
        // Periodic decay keeps the criticality estimates phase-local.
        self.crit_samples += 1;
        if self.crit_samples.is_multiple_of(8192) {
            self.crit_l2.decay();
            self.crit_l3.decay();
        }
        lat
    }

    /// Resets every component's statistics while preserving all state
    /// (cache/TLB contents, partitions, page tables, open DRAM rows).
    /// Used to discard warmup before the measured phase.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1d {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.l3.reset_stats();
        for t in self
            .l1_tlb_4k
            .iter_mut()
            .chain(self.l1_tlb_2m.iter_mut())
            .chain(self.l2_tlb.iter_mut())
        {
            t.reset_stats();
        }
        if let Some(p) = &mut self.pom {
            p.reset_stats();
        }
        if let Some(t) = &mut self.tsb {
            t.reset_stats();
        }
        self.ddr.reset_stats();
        self.stacked.reset_stats();
        self.accesses = 0;
        self.translation_cycles = 0;
        self.data_cycles = 0;
        self.page_walks = 0;
        self.page_walk_cycles = 0;
    }

    /// Aggregate L2 TLB statistics across cores.
    pub fn l2_tlb_stats(&self) -> HitMissStats {
        self.l2_tlb
            .iter()
            .map(|t| *t.stats())
            .fold(HitMissStats::new(), |a, b| a + b)
    }

    /// Mean L2 occupancy across cores and the L3 occupancy (Figure 3).
    pub fn occupancy(&self) -> (Occupancy, Occupancy) {
        let mut l2 = Occupancy::default();
        for c in &self.l2 {
            let o = c.cache().occupancy();
            l2.data_lines += o.data_lines;
            l2.tlb_lines += o.tlb_lines;
            l2.capacity_lines += o.capacity_lines;
        }
        (l2, self.l3.cache().occupancy())
    }

    /// Enables Figure 9 partition tracing on one L2 and the L3.
    pub fn enable_partition_trace(&mut self) {
        if let Some(l2) = self.l2.first_mut() {
            l2.enable_partition_trace();
        }
        self.l3.enable_partition_trace();
    }

    /// Current (first core's L2, L3) data-way partitions, if any.
    pub fn current_partitions(&self) -> (Option<u32>, Option<u32>) {
        (
            self.l2
                .first()
                .and_then(super::managed::ManagedCache::data_ways),
            self.l3.data_ways(),
        )
    }

    /// Repartition observability for core 0's L2: decisions taken so
    /// far, the latest decision, and (when partition tracing is
    /// enabled) the marginal-utility curve behind it.
    pub fn l2_decision_info(&self) -> (u64, Option<PartitionDecision>, &[(u32, f64)]) {
        self.l2.first().map_or((0, None, &[] as &[_]), |c| {
            (c.decisions(), c.last_decision(), c.last_curve())
        })
    }

    /// Repartition observability for the shared L3; see
    /// [`Self::l2_decision_info`].
    pub fn l3_decision_info(&self) -> (u64, Option<PartitionDecision>, &[(u32, f64)]) {
        (
            self.l3.decisions(),
            self.l3.last_decision(),
            self.l3.last_curve(),
        )
    }

    /// Partition samples of (first core's L2, L3).
    pub fn partition_traces(&self) -> (&[PartitionSample], &[PartitionSample]) {
        (
            self.l2
                .first()
                .map(super::managed::ManagedCache::partition_trace)
                .unwrap_or(&[]),
            self.l3.partition_trace(),
        )
    }

    /// Takes a full statistics snapshot.
    pub fn snapshot(&self) -> HierarchySnapshot {
        let agg = |iter: &[SramTlb]| {
            iter.iter()
                .map(|t| *t.stats())
                .fold(HitMissStats::new(), |a, b| a + b)
        };
        let cache_agg = |stats: Vec<CacheStats>| {
            stats.into_iter().fold(CacheStats::default(), |mut a, b| {
                a.data += b.data;
                a.tlb += b.tlb;
                a.fills += b.fills;
                a.evictions += b.evictions;
                a.writebacks += b.writebacks;
                a
            })
        };
        HierarchySnapshot {
            l1_tlb: agg(&self.l1_tlb_4k) + agg(&self.l1_tlb_2m),
            l2_tlb: agg(&self.l2_tlb),
            l1d: cache_agg(self.l1d.iter().map(|c| *c.stats()).collect()),
            l2: cache_agg(self.l2.iter().map(|c| *c.cache().stats()).collect()),
            l3: *self.l3.cache().stats(),
            pom: self.pom.as_ref().map(|p| *p.stats()),
            tsb: self.tsb.as_ref().map(|t| *t.stats()),
            page_walks: self.page_walks,
            page_walk_cycles: self.page_walk_cycles,
            translation_cycles: self.translation_cycles,
            data_cycles: self.data_cycles,
            accesses: self.accesses,
            ddr: *self.ddr.stats(),
            stacked: *self.stacked.stats(),
        }
    }

    /// Mean L2 TLB occupancy (valid entries / capacity) across cores.
    pub fn l2_tlb_utilization(&self) -> f64 {
        if self.l2_tlb.is_empty() {
            return 0.0;
        }
        self.l2_tlb.iter().map(SramTlb::utilization).sum::<f64>() / self.l2_tlb.len() as f64
    }

    /// POM-TLB array occupancy, for schemes that have one.
    pub fn pom_utilization(&self) -> Option<f64> {
        self.pom.as_ref().map(PomTlb::utilization)
    }

    /// Criticality-estimator gauges for the (L2, L3) managed caches —
    /// the §3.2 latency averages next to the weights they produce.
    pub fn criticality_gauges(&self) -> (CriticalityGauges, CriticalityGauges) {
        (self.crit_l2.gauges(), self.crit_l3.gauges())
    }

    /// The scheme this hierarchy runs.
    pub fn scheme(&self) -> TranslationScheme {
        self.scheme
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Serializes every result-affecting component of the hierarchy —
    /// cache/TLB contents and replacement state, POM-TLB/TSB tables,
    /// page tables and frame allocators, PSC prefixes, DRAM open rows,
    /// partitioner and criticality state, and the aggregate counters.
    /// Transients (the walk scratch buffer, the per-access trace sink,
    /// L0 memos) carry no observable state and are skipped; L0 memos
    /// are dropped on restore.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len64(self.l1d.len());
        w.bool(self.virtualized);
        w.bool(self.pom.is_some());
        w.bool(self.tsb.is_some());
        for c in &self.l1d {
            c.ckpt_save(w);
        }
        for c in &self.l2 {
            c.ckpt_save(w);
        }
        self.l3.ckpt_save(w);
        for t in self
            .l1_tlb_4k
            .iter()
            .chain(self.l1_tlb_2m.iter())
            .chain(self.l2_tlb.iter())
        {
            t.ckpt_save(w);
        }
        if let Some(p) = &self.pom {
            p.ckpt_save(w);
        }
        if let Some(t) = &self.tsb {
            t.ckpt_save(w);
        }
        self.nested.ckpt_save(w);
        w.len64(self.contexts.len());
        for ctx in &self.contexts {
            match ctx {
                Translator::Virtualized(space) => {
                    w.u8(0);
                    space.ckpt_save(w);
                }
                Translator::Native(walker) => {
                    w.u8(1);
                    walker.ckpt_save(w);
                }
            }
        }
        self.host_alloc.ckpt_save(w);
        self.ddr.ckpt_save(w);
        self.stacked.ckpt_save(w);
        self.crit_l2.ckpt_save(w);
        self.crit_l3.ckpt_save(w);
        w.u64(self.accesses);
        w.u64(self.crit_samples);
        w.u64(self.translation_cycles);
        w.u64(self.data_cycles);
        w.u64(self.page_walks);
        w.u64(self.page_walk_cycles);
    }

    /// Restores state written by [`MemoryHierarchy::ckpt_save`] into a
    /// hierarchy built from the *same* configuration with the same
    /// contexts added. Guard words (core count, virtualization mode,
    /// component presence, per-component geometry) reject a mismatched
    /// target with [`CkptError::Mismatch`] and leave partially-written
    /// state behind — callers must discard the hierarchy on error and
    /// fall back to a cold run.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.len64()? != self.l1d.len() {
            return Err(CkptError::Mismatch("core count"));
        }
        if r.bool()? != self.virtualized {
            return Err(CkptError::Mismatch("virtualization mode"));
        }
        if r.bool()? != self.pom.is_some() || r.bool()? != self.tsb.is_some() {
            return Err(CkptError::Mismatch("translation component presence"));
        }
        for c in &mut self.l1d {
            c.ckpt_load(r)?;
        }
        for c in &mut self.l2 {
            c.ckpt_load(r)?;
        }
        self.l3.ckpt_load(r)?;
        for t in self
            .l1_tlb_4k
            .iter_mut()
            .chain(self.l1_tlb_2m.iter_mut())
            .chain(self.l2_tlb.iter_mut())
        {
            t.ckpt_load(r)?;
        }
        if let Some(p) = &mut self.pom {
            p.ckpt_load(r)?;
        }
        if let Some(t) = &mut self.tsb {
            t.ckpt_load(r)?;
        }
        self.nested.ckpt_load(r)?;
        if r.len64()? != self.contexts.len() {
            return Err(CkptError::Mismatch("context count"));
        }
        for ctx in &mut self.contexts {
            let tag = r.u8()?;
            match (tag, &mut *ctx) {
                (0, Translator::Virtualized(space)) => space.ckpt_load(r)?,
                (1, Translator::Native(walker)) => walker.ckpt_load(r)?,
                _ => return Err(CkptError::Mismatch("context translator kind")),
            }
        }
        self.host_alloc.ckpt_load(r)?;
        self.ddr.ckpt_load(r)?;
        self.stacked.ckpt_load(r)?;
        self.crit_l2.ckpt_load(r)?;
        self.crit_l3.ckpt_load(r)?;
        self.accesses = r.u64()?;
        self.crit_samples = r.u64()?;
        self.translation_cycles = r.u64()?;
        self.data_cycles = r.u64()?;
        self.page_walks = r.u64()?;
        self.page_walk_cycles = r.u64()?;
        self.walk_scratch.clear();
        self.trace = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::PageSize;

    fn access_at(addr: u64) -> MemAccess {
        MemAccess::read(VirtAddr::new(addr), 4)
    }

    fn hier(scheme: TranslationScheme, virtualized: bool) -> MemoryHierarchy {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 10_000;
        MemoryHierarchy::new(&cfg, scheme, virtualized, HugePagePolicy::NONE, 1)
    }

    #[test]
    fn first_touch_walks_then_l1_tlb_hits() {
        let mut h = hier(TranslationScheme::Conventional, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        let first = h.access(core, ctx, access_at(0x1000));
        assert!(first.walked);
        assert!(!first.l1_tlb_hit);
        assert!(first.translation_cycles > 17, "walk adds cycles");
        let second = h.access(core, ctx, access_at(0x1040));
        assert!(second.l1_tlb_hit);
        assert_eq!(second.translation_cycles, 0, "L1 TLB hit is overlapped");
        assert!(!second.walked);
    }

    #[test]
    fn repeated_line_hits_l1_cache() {
        let mut h = hier(TranslationScheme::Conventional, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        h.access(core, ctx, access_at(0x2000));
        let c = h.access(core, ctx, access_at(0x2000));
        assert_eq!(c.data_cycles, h.config().l1d.latency);
    }

    #[test]
    fn pom_serves_translations_without_walks_after_first_touch() {
        let mut h = hier(TranslationScheme::PomTlb, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        // Touch 4000 distinct pages: far beyond the 1536-entry L2 TLB.
        for i in 0..4000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        let walks_after_first_pass = h.snapshot().page_walks;
        assert_eq!(walks_after_first_pass, 4000, "one walk per new page");
        // Second pass: L2 TLB thrashes but the POM-TLB holds everything.
        for i in 0..4000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        let snap = h.snapshot();
        assert_eq!(snap.page_walks, 4000, "no additional walks");
        assert!(snap.l2_tlb.misses > 4000, "L2 TLB thrashed");
        assert!(snap.walk_elimination() > 0.4);
        assert!(snap.pom.expect("pom present").hits > 0);
    }

    #[test]
    fn conventional_walks_on_every_l2_tlb_miss() {
        let mut h = hier(TranslationScheme::Conventional, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..4000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        for i in 0..4000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        let snap = h.snapshot();
        assert_eq!(snap.page_walks, snap.l2_tlb.misses, "every miss walks");
        assert!(snap.page_walks > 4000);
    }

    #[test]
    fn pom_translation_traffic_occupies_caches() {
        let mut h = hier(TranslationScheme::PomTlb, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..20_000u64 {
            h.access(core, ctx, access_at(0x10_0000 + (i * 4096) % (8 << 30)));
        }
        let (l2, l3) = h.occupancy();
        assert!(
            l2.tlb_fraction() > 0.1,
            "L2 TLB fraction {}",
            l2.tlb_fraction()
        );
        assert!(
            l3.tlb_fraction() > 0.1,
            "L3 TLB fraction {}",
            l3.tlb_fraction()
        );
    }

    #[test]
    fn csalt_partitions_both_levels() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 2000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::CsaltD,
            true,
            HugePagePolicy::NONE,
            1,
        );
        h.enable_partition_trace();
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..30_000u64 {
            h.access(core, ctx, access_at(0x10_0000 + (i * 4096) % (1 << 28)));
        }
        let (l2_trace, l3_trace) = h.partition_traces();
        assert!(!l3_trace.is_empty(), "L3 must have repartitioned");
        assert!(!l2_trace.is_empty(), "core 0's L2 must have repartitioned");
    }

    #[test]
    fn tsb_scheme_translates_and_reuses_buffer() {
        let mut h = hier(TranslationScheme::Tsb, true);
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..3000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        for i in 0..3000u64 {
            h.access(core, ctx, access_at(0x10_0000 + i * 4096));
        }
        let snap = h.snapshot();
        let tsb = snap.tsb.expect("tsb present");
        assert!(tsb.hits > 0, "TSB must serve reuse");
        assert!(snap.page_walks < snap.l2_tlb.misses, "TSB eliminates walks");
    }

    #[test]
    fn native_walks_are_cheaper_than_virtualized() {
        let run = |virtualized: bool| {
            let mut h = hier(TranslationScheme::Conventional, virtualized);
            let ctx = h.add_context();
            let core = CoreId::new(0);
            for i in 0..2000u64 {
                h.access(core, ctx, access_at(0x10_0000 + i * 4096 * 17));
            }
            h.snapshot().walk_cycles_per_walk()
        };
        let native = run(false);
        let virt = run(true);
        // Table 1's measured ratios are modest for PSC-friendly strides
        // (gups 43→70, canneal 53→61); require the same direction here.
        assert!(
            virt > native * 1.15,
            "virtualized {virt:.0} vs native {native:.0}"
        );
    }

    #[test]
    fn contexts_have_disjoint_translations() {
        let mut h = hier(TranslationScheme::PomTlb, true);
        let a = h.add_context();
        let b = h.add_context();
        let core = CoreId::new(0);
        h.access(core, a, access_at(0x5000));
        h.access(core, b, access_at(0x5000));
        let snap = h.snapshot();
        assert_eq!(snap.page_walks, 2, "same VA in two VMs walks twice");
    }

    #[test]
    fn multi_core_accesses_share_the_l3() {
        let mut h = hier(TranslationScheme::PomTlb, true);
        let ctx = h.add_context();
        h.access(CoreId::new(0), ctx, access_at(0x9000));
        // Another core touching the same line: misses its private L2 but
        // hits the shared L3.
        let before = h.snapshot().l3.total();
        h.access(CoreId::new(3), ctx, access_at(0x9000));
        let after = h.snapshot().l3.total();
        assert!(after.hits > before.hits, "L3 is shared");
    }

    #[test]
    fn huge_pages_install_into_the_2m_l1_tlb() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 10_000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::PomTlb,
            true,
            HugePagePolicy { fraction_2m: 1.0 },
            1,
        );
        let ctx = h.add_context();
        let core = CoreId::new(0);
        let first = h.access(core, ctx, access_at(0x40_0000));
        assert!(first.walked);
        // Address 1 MiB away: same 2 MiB page → L1 2M TLB hit.
        let near = h.access(core, ctx, access_at(0x40_0000 + (1 << 20)));
        assert!(near.l1_tlb_hit);
    }

    #[test]
    fn snapshot_serializes() {
        let mut h = hier(TranslationScheme::CsaltCd, true);
        let ctx = h.add_context();
        h.access(CoreId::new(0), ctx, access_at(0x1000));
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).expect("serializable");
        assert!(json.contains("page_walks"));
    }

    #[test]
    fn traced_stage_cycles_sum_to_charge_for_every_scheme() {
        for scheme in [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltCd,
            TranslationScheme::Tsb,
        ] {
            let mut h = hier(scheme, true);
            let ctx = h.add_context();
            for i in 0..64u64 {
                let (charge, stages) =
                    h.access_traced(CoreId::new(0), ctx, access_at(0x1000 + i * 0x1800));
                let stage_sum: u64 = stages.iter().map(|s| s.cycles).sum();
                assert_eq!(
                    stage_sum,
                    charge.translation_cycles + charge.data_cycles,
                    "scheme {scheme:?}: stage cycles must partition the charge"
                );
                assert!(
                    stages.iter().any(|s| s.stage == WalkStage::Data),
                    "every trace records the data stage"
                );
                if charge.walked {
                    assert!(
                        stages
                            .iter()
                            .any(|s| matches!(s.stage, WalkStage::GuestPte | WalkStage::HostPte)),
                        "walked accesses record PTE stages"
                    );
                }
            }
        }
    }

    #[test]
    fn traced_walk_tags_both_dimensions_when_virtualized() {
        let mut h = hier(TranslationScheme::Conventional, true);
        let ctx = h.add_context();
        let (charge, stages) = h.access_traced(CoreId::new(0), ctx, access_at(0x5a5a_0000));
        assert!(charge.walked);
        let guests = stages
            .iter()
            .filter(|s| s.stage == WalkStage::GuestPte)
            .count();
        let hosts = stages
            .iter()
            .filter(|s| s.stage == WalkStage::HostPte)
            .count();
        assert_eq!(guests, 4, "cold 2D walk reads 4 guest PTEs");
        // Five embedded host walks (for gL4..gL1 and the final gPA); the
        // host PSC collapses all but the first to a single terminal read.
        assert!(
            (5..=20).contains(&hosts),
            "2D walk embeds 5 host walks (PSC-compressed): {hosts}"
        );
    }

    #[test]
    fn untraced_access_records_no_stages() {
        let mut h = hier(TranslationScheme::PomTlb, false);
        let ctx = h.add_context();
        h.access(CoreId::new(0), ctx, access_at(0x1000));
        let (_, stages) = h.access_traced(CoreId::new(0), ctx, access_at(0x2000));
        assert!(!stages.is_empty());
        // Tracing is one-shot: the next plain access leaves no residue.
        h.access(CoreId::new(0), ctx, access_at(0x3000));
        let (_, stages2) = h.access_traced(CoreId::new(0), ctx, access_at(0x4000));
        assert!(stages2.iter().all(|s| s.cycles < u64::MAX));
    }

    #[test]
    fn snapshot_delta_since_sums_back_to_total() {
        let mut h = hier(TranslationScheme::CsaltCd, true);
        let ctx = h.add_context();
        for i in 0..128u64 {
            h.access(CoreId::new(0), ctx, access_at(0x1000 + i * 0x940));
        }
        let mid = h.snapshot();
        for i in 0..128u64 {
            h.access(CoreId::new(0), ctx, access_at(0x90_0000 + i * 0x940));
        }
        let end = h.snapshot();
        let delta = end.delta_since(&mid);
        assert_eq!(delta.accesses, 128);
        assert_eq!(
            mid.translation_cycles + delta.translation_cycles,
            end.translation_cycles
        );
        assert_eq!(mid.data_cycles + delta.data_cycles, end.data_cycles);
        assert_eq!(mid.page_walks + delta.page_walks, end.page_walks);
        assert_eq!(
            mid.l2_tlb.accesses() + delta.l2_tlb.accesses(),
            end.l2_tlb.accesses()
        );
        assert_eq!(mid.ddr.accesses + delta.ddr.accesses, end.ddr.accesses);
    }

    #[test]
    fn utilization_gauges_are_bounded() {
        let mut h = hier(TranslationScheme::CsaltCd, false);
        let ctx = h.add_context();
        for i in 0..256u64 {
            h.access(CoreId::new(0), ctx, access_at(0x4000 + i * 0x1000));
        }
        let u = h.l2_tlb_utilization();
        assert!(u > 0.0 && u <= 1.0, "L2 TLB utilization in (0, 1]: {u}");
        let p = h.pom_utilization().expect("CSALT-CD has a POM-TLB");
        assert!((0.0..=1.0).contains(&p), "POM utilization in [0, 1]: {p}");
        let (g2, g3) = h.criticality_gauges();
        assert!(g2.s_tr >= g2.s_dat && g3.s_tr >= g3.s_dat);
    }

    #[test]
    fn page_size_of_installed_entry_matches_policy() {
        let mut h = hier(TranslationScheme::PomTlb, true);
        let ctx = h.add_context();
        let charge = h.access(CoreId::new(0), ctx, access_at(0x1234_5678));
        assert!(charge.walked);
        // 4K policy: second access in the same 4K page hits L1 TLB...
        let same_page = h.access(CoreId::new(0), ctx, access_at(0x1234_5000));
        assert!(same_page.l1_tlb_hit);
        // ...but the neighbouring 4K page misses the L1 TLBs.
        let next_page = h.access(CoreId::new(0), ctx, access_at(0x1234_7000));
        assert!(!next_page.l1_tlb_hit);
        let _ = PageSize::Size4K;
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn access_at(addr: u64) -> MemAccess {
        MemAccess::read(VirtAddr::new(addr), 4)
    }

    #[test]
    fn tsb_csalt_partitions_and_uses_the_tsb() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 2_000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::TsbCsalt,
            true,
            HugePagePolicy::NONE,
            1,
        );
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..20_000u64 {
            h.access(core, ctx, access_at(0x10_0000 + (i * 4096) % (1 << 28)));
        }
        let snap = h.snapshot();
        assert!(snap.tsb.expect("tsb present").accesses() > 0);
        assert!(snap.pom.is_none(), "no POM-TLB in a TSB scheme");
        let (l2, l3) = h.current_partitions();
        assert!(l2.is_some() && l3.is_some(), "caches must be partitioned");
    }

    #[test]
    fn decision_info_exposes_curves_when_tracing() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 2_000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::CsaltD,
            true,
            HugePagePolicy::NONE,
            1,
        );
        h.enable_partition_trace();
        let ctx = h.add_context();
        let core = CoreId::new(0);
        for i in 0..30_000u64 {
            h.access(core, ctx, access_at(0x10_0000 + (i * 4096) % (1 << 28)));
        }
        let (l3_n, l3_dec, l3_curve) = h.l3_decision_info();
        assert!(l3_n > 0, "L3 must have decided at least once");
        let dec = l3_dec.expect("decision recorded");
        assert_eq!(dec.data_ways + dec.tlb_ways, cfg.l3.ways);
        assert_eq!(
            l3_curve.len() as u32,
            cfg.l3.ways - 1,
            "full feasible-split curve recorded under tracing"
        );
        let (l2_n, l2_dec, _) = h.l2_decision_info();
        assert!(l2_n > 0 && l2_dec.is_some());
    }

    #[test]
    fn decision_curve_is_empty_without_tracing() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 2_000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::CsaltD,
            true,
            HugePagePolicy::NONE,
            1,
        );
        let ctx = h.add_context();
        for i in 0..10_000u64 {
            h.access(
                CoreId::new(0),
                ctx,
                access_at(0x10_0000 + (i * 4096) % (1 << 28)),
            );
        }
        let (n, dec, curve) = h.l3_decision_info();
        assert!(n > 0 && dec.is_some(), "decisions tracked regardless");
        assert!(curve.is_empty(), "curve only recomputed under tracing");
    }

    #[test]
    fn drrip_scheme_runs_with_rrip_storage() {
        let mut cfg = SystemConfig::skylake();
        cfg.epoch_accesses = 5_000;
        let mut h = MemoryHierarchy::new(
            &cfg,
            TranslationScheme::Drrip,
            true,
            HugePagePolicy::NONE,
            4,
        );
        let ctx = h.add_context();
        for i in 0..10_000u64 {
            h.access(
                CoreId::new(0),
                ctx,
                access_at(0x10_0000 + (i * 4096) % (1 << 27)),
            );
        }
        let snap = h.snapshot();
        assert!(snap.pom.expect("POM present").accesses() > 0);
        assert!(h.current_partitions().1.is_none(), "DRRIP never partitions");
        assert_eq!(snap.accesses, 10_000);
    }

    #[test]
    fn five_level_hierarchy_walks_cost_more() {
        let run_levels = |levels: u8| {
            let mut cfg = SystemConfig::skylake();
            cfg.pt_levels = levels;
            // Disable the PSC so the depth difference is fully visible.
            cfg.psc.pml4_entries = 0;
            cfg.psc.pdp_entries = 0;
            cfg.psc.pde_entries = 0;
            let mut h = MemoryHierarchy::new(
                &cfg,
                TranslationScheme::Conventional,
                true,
                HugePagePolicy::NONE,
                1,
            );
            let ctx = h.add_context();
            for i in 0..1500u64 {
                h.access(CoreId::new(0), ctx, access_at(0x10_0000 + i * 4096 * 33));
            }
            h.snapshot().walk_cycles_per_walk()
        };
        let four = run_levels(4);
        let five = run_levels(5);
        assert!(
            five > four * 1.1,
            "5-level walks {five:.0} should cost more than 4-level {four:.0}"
        );
    }
}
