//! A bounded lock-free single-producer single-consumer ring.
//!
//! Hand-rolled (the workspace takes no registry dependencies) and —
//! unusually for this kind of structure — written entirely in safe
//! Rust, which the workspace denies `unsafe_code` workspace-wide. The
//! trick: slots are `AtomicU64` words rather than `UnsafeCell`s.
//! Records encode to a fixed number of `u64` words; the producer writes
//! slot words with `Relaxed` stores and *publishes* them with one
//! `Release` store of the tail index, which the consumer observes with
//! an `Acquire` load before reading the words back (`Relaxed`). The
//! release/acquire edge on `tail` makes every word store visible before
//! the slot is considered full; the symmetric edge on `head` (consumer
//! `Release`-publishes consumption, producer `Acquire`-loads before
//! reuse) makes every word *read* happen before the slot is rewritten.
//! Every slot access is atomic, so there is no data race to make UB —
//! the orderings are needed only for the values to be the right ones.
//!
//! Head and tail live on separate cache lines (the classic false-
//! sharing fix) and both sides keep a cached copy of the opposite
//! index, refreshing it only when the ring looks full/empty — the
//! steady-state fast path touches one shared line per batch, not per
//! record.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-width record that can cross the ring as `u64` words.
pub trait Record: Copy {
    /// Words per record. Must be ≥ 1 and the same for every value.
    const WORDS: usize;

    /// Writes the record into `out` (exactly `WORDS` words).
    fn encode(&self, out: &mut [u64]);

    /// Reconstructs a record from `words` (exactly `WORDS` words).
    fn decode(words: &[u64]) -> Self;
}

/// Plain `u64` payloads — used by the ring's own tests and benches.
impl Record for u64 {
    const WORDS: usize = 1;

    #[inline]
    fn encode(&self, out: &mut [u64]) {
        out[0] = *self;
    }

    #[inline]
    fn decode(words: &[u64]) -> Self {
        words[0]
    }
}

/// Pads the wrapped atomic onto its own cache line(s). 128 bytes covers
/// the spatial-prefetcher pairing on recent x86 parts as well.
#[repr(align(128))]
struct CachePadded(AtomicUsize);

/// State shared by the two endpoints. `head` and `tail` are free-running
/// record counters (they never wrap modulo the capacity; slot index is
/// `counter & mask`), which makes full/empty tests simple subtractions.
struct Shared {
    buf: Box<[AtomicU64]>,
    head: CachePadded,
    tail: CachePadded,
    capacity: usize,
    mask: usize,
}

/// Creates a ring with space for at least `capacity` records, returning
/// the two endpoints. Capacity is rounded up to a power of two.
///
/// # Panics
///
/// Panics if `capacity` is zero or `T::WORDS` is zero.
#[must_use]
pub fn ring<T: Record>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    assert!(T::WORDS > 0, "records must span at least one word");
    let capacity = capacity.next_power_of_two();
    let words = capacity
        .checked_mul(T::WORDS)
        .expect("ring byte size overflows");
    let shared = Arc::new(Shared {
        buf: (0..words).map(|_| AtomicU64::new(0)).collect(),
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        capacity,
        mask: capacity - 1,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
            tail: 0,
            scratch: vec![0; T::WORDS],
            _records: PhantomData,
        },
        Consumer {
            shared,
            cached_tail: 0,
            head: 0,
            scratch: vec![0; T::WORDS],
            _records: PhantomData,
        },
    )
}

/// The write endpoint. `Send`, not `Sync`: exactly one thread owns it.
pub struct Producer<T: Record> {
    shared: Arc<Shared>,
    /// Last observed consumer index; refreshed only when the ring looks
    /// full, so the fast path stays off the consumer's cache line.
    cached_head: usize,
    /// Local copy of the free-running write index (the shared `tail` is
    /// only ever written by this endpoint).
    tail: usize,
    scratch: Vec<u64>,
    _records: PhantomData<T>,
}

impl<T: Record> Producer<T> {
    /// Record capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Free record slots, refreshing the consumer index if the cached
    /// view says the ring is full.
    pub fn space(&mut self) -> usize {
        let cap = self.shared.capacity;
        if self.tail - self.cached_head == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
        }
        cap - (self.tail - self.cached_head)
    }

    /// Pushes as many of `items` as fit, in order, and publishes them
    /// with a single `Release` store. Returns how many were pushed
    /// (possibly zero — the ring never blocks).
    pub fn push_batch(&mut self, items: &[T]) -> usize {
        let n = items.len().min(self.space());
        if n == 0 {
            return 0;
        }
        let words = T::WORDS;
        for (k, item) in items[..n].iter().enumerate() {
            let base = ((self.tail + k) & self.shared.mask) * words;
            item.encode(&mut self.scratch);
            for (i, &w) in self.scratch.iter().enumerate() {
                // Relaxed is enough: the Release store of `tail` below
                // orders these before the slots become visible as full.
                self.shared.buf[base + i].store(w, Ordering::Relaxed);
            }
        }
        self.tail += n;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        n
    }

    /// Pushes one record; `false` if the ring is full.
    pub fn push(&mut self, item: T) -> bool {
        self.push_batch(std::slice::from_ref(&item)) == 1
    }
}

/// The read endpoint. `Send`, not `Sync`: exactly one thread owns it.
pub struct Consumer<T: Record> {
    shared: Arc<Shared>,
    /// Last observed producer index; refreshed only when the ring looks
    /// empty.
    cached_tail: usize,
    /// Local copy of the free-running read index (the shared `head` is
    /// only ever written by this endpoint).
    head: usize,
    scratch: Vec<u64>,
    _records: PhantomData<T>,
}

impl<T: Record> Consumer<T> {
    /// Pops the oldest record, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.cached_tail == self.head {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return None;
            }
        }
        let base = (self.head & self.shared.mask) * T::WORDS;
        for (i, w) in self.scratch.iter_mut().enumerate() {
            *w = self.shared.buf[base + i].load(Ordering::Relaxed);
        }
        let item = T::decode(&self.scratch);
        self.head += 1;
        // Release: the producer must observe our word reads as done
        // before it reuses the slot.
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Pops up to `max` of the oldest records into `out` (appended in
    /// FIFO order) and returns how many were popped.
    ///
    /// This is the block-drain counterpart of [`Consumer::pop`]: one
    /// `Acquire` refresh of the cached tail (and only when the cached
    /// view says the ring is empty), `Relaxed` word decodes for every
    /// record in the block, and a single `Release` store of `head` to
    /// hand the whole block of slots back to the producer. Draining K
    /// records costs one shared-line round trip instead of K.
    pub fn pop_block(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        if self.cached_tail == self.head {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return 0;
            }
        }
        let n = (self.cached_tail - self.head).min(max);
        for k in 0..n {
            let base = ((self.head + k) & self.shared.mask) * T::WORDS;
            for (i, w) in self.scratch.iter_mut().enumerate() {
                *w = self.shared.buf[base + i].load(Ordering::Relaxed);
            }
            out.push(T::decode(&self.scratch));
        }
        self.head += n;
        // Release: the producer must observe our word reads as done
        // before it reuses any slot in the block.
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Records visible to this endpoint right now (staleness is one
    /// `tail` refresh; exact once the producer has stopped). This is
    /// the occupancy gauge the pipeline telemetry samples.
    pub fn occupancy(&mut self) -> usize {
        self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        self.cached_tail - self.head
    }

    /// Record capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (mut p, mut c) = ring::<u64>(8);
        assert_eq!(p.capacity(), 8);
        assert!(c.pop().is_none());
        for v in 0..8u64 {
            assert!(p.push(v));
        }
        assert!(!p.push(99), "ring must report full");
        for v in 0..8u64 {
            assert_eq!(c.pop(), Some(v));
        }
        assert!(c.pop().is_none());
    }

    #[test]
    fn batch_push_truncates_to_space() {
        let (mut p, mut c) = ring::<u64>(4);
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(p.push_batch(&items), 4);
        assert_eq!(c.pop(), Some(0));
        assert_eq!(p.push_batch(&items[4..]), 1);
        for want in [1, 2, 3, 4] {
            assert_eq!(c.pop(), Some(want));
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = ring::<u64>(5);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn wraps_many_times() {
        let (mut p, mut c) = ring::<u64>(4);
        for v in 0..1000u64 {
            assert!(p.push(v));
            assert_eq!(c.pop(), Some(v));
        }
    }

    #[test]
    fn pop_block_matches_single_pops() {
        let (mut p, mut c) = ring::<u64>(8);
        let mut out = Vec::new();
        assert_eq!(c.pop_block(&mut out, 4), 0, "empty ring drains nothing");
        for v in 0..6u64 {
            assert!(p.push(v));
        }
        assert_eq!(c.pop_block(&mut out, 0), 0, "max=0 is a no-op");
        assert_eq!(c.pop_block(&mut out, 4), 4, "block is capped by max");
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(
            c.pop(),
            Some(4),
            "single pop continues where the block left off"
        );
        assert_eq!(
            c.pop_block(&mut out, 4),
            1,
            "block is capped by availability"
        );
        assert_eq!(out, vec![0, 1, 2, 3, 5]);
        // The block's single Release store must free all drained slots.
        for v in 10..18u64 {
            assert!(p.push(v), "drained slots must be reusable");
        }
        out.clear();
        assert_eq!(c.pop_block(&mut out, 16), 8);
        assert_eq!(out, (10..18u64).collect::<Vec<_>>());
    }

    #[test]
    fn pop_block_wraps_across_ring_boundary() {
        let (mut p, mut c) = ring::<u64>(4);
        let mut out = Vec::new();
        for round in 0..100u64 {
            let base = round * 3;
            let batch = [base, base + 1, base + 2];
            let mut pushed = 0;
            // push_batch refreshes its cached head lazily, so a single
            // call may push a short count mid-wrap; loop to land all 3.
            while pushed < batch.len() {
                pushed += p.push_batch(&batch[pushed..]);
            }
            assert_eq!(c.pop_block(&mut out, 3), 3);
        }
        let want: Vec<u64> = (0..300u64).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn cross_thread_stream_is_ordered_and_complete() {
        const N: u64 = 50_000;
        let (mut p, mut c) = ring::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                let batch: Vec<u64> = (next..(next + 32).min(N)).collect();
                let pushed = p.push_batch(&batch) as u64;
                next += pushed;
                if pushed == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expect, "out-of-order or corrupted record");
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert!(c.pop().is_none());
        producer.join().expect("producer thread");
    }
}
