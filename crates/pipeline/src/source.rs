//! Producer threads and the consumer-side façade the commit stage pops
//! from.
//!
//! One ring per `(core, VM)` pair. The commit stage decides which VM a
//! core is running (that decision depends on simulated cycle counts and
//! must stay serial) and pops from exactly that ring; producers never
//! see the schedule, they just keep every ring they own topped up. A
//! producer owns *whole cores* (`core % producers == index`), so each
//! generator is driven by exactly one thread and the per-ring SPSC
//! contract holds by construction.

use crate::budget::host_parallelism;
use crate::spsc::{ring, Consumer, Producer};
use crate::staged::StagedAccess;
use csalt_types::Asid;
use csalt_workloads::{AnyGenerator, TraceGenerator};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records staged per `push_batch` call. Small enough to keep rings
/// fresh across all of a producer's slots, large enough to amortize the
/// publish store.
const BATCH: usize = 128;

/// Default ring capacity, in records (1 record = 32 bytes), per
/// `(core, VM)` pair.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Consumer-side stall spins between yields, so a starved commit stage
/// does not monopolize the core its producer needs (matters on hosts
/// with fewer hardware threads than pipeline threads).
const SPINS_PER_YIELD: u32 = 64;

/// Sample ring occupancy every this many pops.
const OCCUPANCY_SAMPLE_EVERY: u64 = 1024;

/// Records drained from a ring per `pop_block` call — one Acquire/
/// Release round trip on the shared indices amortized over this many
/// records. Sized below [`BATCH`] so a drain never starves the commit
/// stage waiting on a whole producer batch.
const DRAIN_BLOCK: usize = 64;

/// Point-in-time pipeline progress, readable from the commit-stage
/// thread while producers are still running (progress lines, trace
/// events). Monotonic between reads; never feeds simulated results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineProgress {
    /// Records staged into rings so far (producer-side, approximate by
    /// up to one batch per producer).
    pub records_staged: u64,
    /// Records the commit stage has popped so far.
    pub records_committed: u64,
    /// Producer stall waits so far (every owned ring full).
    pub producer_stalls: u64,
    /// Consumer stall spins so far (ring empty when commit wanted one).
    pub consumer_stalls: u64,
    /// Block drains the commit stage has taken so far.
    pub block_drains: u64,
    /// Records handed over by those block drains.
    pub block_drained_records: u64,
}

/// One producer thread's end-of-run contribution, for per-thread
/// attribution in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerPerf {
    /// Records this thread staged.
    pub staged: u64,
    /// Stall waits this thread took.
    pub stalls: u64,
}

/// End-of-run pipeline telemetry: how well production overlapped
/// commit.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Producer threads that ran.
    pub producers: usize,
    /// Records staged into rings (production runs ahead; usually larger
    /// than `records_committed`).
    pub records_staged: u64,
    /// Records the commit stage actually popped.
    pub records_committed: u64,
    /// Producer-side stall waits (every ring a producer owns was full).
    pub producer_stalls: u64,
    /// Consumer-side stall spins (commit wanted a record the producer
    /// had not staged yet).
    pub consumer_stalls: u64,
    /// Ring capacity in records, per `(core, VM)` ring.
    pub ring_capacity: usize,
    /// Sum of sampled ring occupancies (see `occupancy_samples`).
    pub occupancy_sum: u64,
    /// Number of occupancy samples taken.
    pub occupancy_samples: u64,
    /// `pop_block` calls the commit stage took (each is one shared-line
    /// round trip, however many records it drained).
    pub block_drains: u64,
    /// Records delivered by block drains. At least `records_committed`
    /// (every committed record arrives via a block; the local buffers
    /// may still hold a drained-but-uncommitted tail at finish).
    pub block_drained_records: u64,
    /// Per-producer-thread staging/stall breakdown, indexed by thread.
    pub per_producer: Vec<ProducerPerf>,
}

impl PipelineStats {
    /// Mean sampled occupancy of the ring being popped, as a fraction
    /// of its capacity — the "how far ahead does production run" gauge.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 || self.ring_capacity == 0 {
            return 0.0;
        }
        self.occupancy_sum as f64 / self.occupancy_samples as f64 / self.ring_capacity as f64
    }

    /// Mean records per block drain — the achieved amortization factor
    /// (1.0 would mean the batching bought nothing).
    #[must_use]
    pub fn mean_drain_block(&self) -> f64 {
        if self.block_drains == 0 {
            return 0.0;
        }
        self.block_drained_records as f64 / self.block_drains as f64
    }
}

/// What one producer thread reports when joined.
struct ProducerReport {
    staged: u64,
    stalls: u64,
}

/// Producer-side counters shared with the consumer for live progress.
/// Plain stat counters, never consulted by the commit path's logic:
/// Relaxed suffices (only the ring publication indices are
/// Relaxed-denied by the audit policy).
#[derive(Default)]
struct LiveCounters {
    staged: AtomicU64,
    stalls: AtomicU64,
}

/// One generator a producer drives, with its write endpoint.
struct Slot {
    gen: AnyGenerator,
    asid: Asid,
    out: Producer<StagedAccess>,
}

/// Commit-side local buffer over one `(core, VM)` ring: `pop_block`
/// refills it wholesale, `next` hands records out one at a time. A
/// plain `Vec` plus cursor (no `VecDeque`) — the buffer is always
/// drained to empty before the next refill, so the front never moves.
#[derive(Default)]
struct DrainBuf {
    buf: Vec<StagedAccess>,
    cursor: usize,
}

/// The consumer-side façade over all `(core, VM)` rings, plus the
/// handles of the producer threads filling them.
pub struct StagedStreams {
    /// `rings[core][vm]`.
    rings: Vec<Vec<Consumer<StagedAccess>>>,
    /// `bufs[core][vm]`: the local block each ring was last drained
    /// into.
    bufs: Vec<Vec<DrainBuf>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<ProducerReport>>,
    producers: usize,
    ring_capacity: usize,
    pops: u64,
    consumer_stalls: u64,
    occupancy_sum: u64,
    occupancy_samples: u64,
    block_drains: u64,
    block_drained_records: u64,
    staged_total: u64,
    producer_stalls_total: u64,
    per_producer: Vec<ProducerPerf>,
    live: Arc<LiveCounters>,
}

impl StagedStreams {
    /// Spawns `producers` threads over `threads[vm][core]` generators
    /// (the simulator's layout) and returns the consumer façade.
    /// `asids[vm]` is the ASID each VM's accesses are staged under —
    /// it must match what the hierarchy will assign, or the commit
    /// stage's debug assertions fire.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or ragged, `asids` is shorter than
    /// the VM count, or a producer thread cannot be spawned.
    #[must_use]
    pub fn spawn(
        threads: Vec<Vec<AnyGenerator>>,
        asids: &[Asid],
        producers: usize,
        ring_capacity: usize,
    ) -> Self {
        let vms = threads.len();
        assert!(vms > 0, "at least one VM");
        let cores = threads[0].len();
        assert!(cores > 0, "at least one core");
        assert!(asids.len() >= vms, "one ASID per VM");
        let producers = producers.clamp(1, cores);

        // Build the ring matrix and transpose the generators into
        // per-producer work lists: producer `t` owns every slot of the
        // cores with `core % producers == t`.
        let mut consumers: Vec<Vec<Consumer<StagedAccess>>> =
            (0..cores).map(|_| Vec::new()).collect();
        let mut work: Vec<Vec<Slot>> = (0..producers).map(|_| Vec::new()).collect();
        // Peel [vm][core] into per-core columns without cloning
        // generators: iterate VMs outer, push into per-core order.
        let mut columns: Vec<Vec<(usize, AnyGenerator)>> = (0..cores).map(|_| Vec::new()).collect();
        for (vm, row) in threads.into_iter().enumerate() {
            assert_eq!(row.len(), cores, "ragged generator matrix");
            for (core, gen) in row.into_iter().enumerate() {
                columns[core].push((vm, gen));
            }
        }
        for (core, column) in columns.into_iter().enumerate() {
            for (vm, gen) in column {
                let (tx, rx) = ring::<StagedAccess>(ring_capacity);
                consumers[core].push(rx);
                work[core % producers].push(Slot {
                    gen,
                    asid: asids[vm],
                    out: tx,
                });
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(LiveCounters::default());
        let handles = work
            .into_iter()
            .enumerate()
            .map(|(t, slots)| {
                let stop = Arc::clone(&stop);
                let live = Arc::clone(&live);
                std::thread::Builder::new()
                    .name(format!("csalt-produce-{t}"))
                    .spawn(move || produce(slots, &stop, &live))
                    .expect("spawn pipeline producer thread")
            })
            .collect();

        Self {
            bufs: (0..consumers.len())
                .map(|_| (0..vms).map(|_| DrainBuf::default()).collect())
                .collect(),
            rings: consumers,
            stop,
            handles,
            producers,
            ring_capacity: ring_capacity.next_power_of_two(),
            pops: 0,
            consumer_stalls: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
            block_drains: 0,
            block_drained_records: 0,
            staged_total: 0,
            producer_stalls_total: 0,
            per_producer: Vec::new(),
            live,
        }
    }

    /// A point-in-time progress snapshot, safe to take from the commit
    /// thread while producers run. Producer counters are Relaxed reads
    /// (may trail by a batch); consumer counters are exact.
    #[must_use]
    pub fn progress(&self) -> PipelineProgress {
        PipelineProgress {
            records_staged: self.live.staged.load(Ordering::Relaxed),
            records_committed: self.pops,
            producer_stalls: self.live.stalls.load(Ordering::Relaxed),
            consumer_stalls: self.consumer_stalls,
            block_drains: self.block_drains,
            block_drained_records: self.block_drained_records,
        }
    }

    /// Producer threads to request for `cores` simulated cores given a
    /// thread-budget grant — one per core, clamped to both the grant
    /// and the host's parallelism.
    #[must_use]
    pub fn producers_for(cores: usize, granted: usize) -> usize {
        cores.min(granted).min(host_parallelism()).max(1)
    }

    /// Pops the next access of `(core, vm)`, spinning (with periodic
    /// yields) until the producer has staged it. This is the commit
    /// stage's only hot-path call.
    ///
    /// Records are drained from the ring in blocks of up to
    /// [`DRAIN_BLOCK`] (one shared-index round trip per block, see
    /// [`Consumer::pop_block`]) and handed out one at a time from a
    /// local buffer, so the per-`(core, vm)` FIFO order is exactly that
    /// of single pops.
    #[inline]
    pub fn next(&mut self, core: usize, vm: usize) -> StagedAccess {
        let buf = &mut self.bufs[core][vm];
        if buf.cursor == buf.buf.len() {
            buf.buf.clear();
            buf.cursor = 0;
            let ring = &mut self.rings[core][vm];
            let mut spins: u32 = 0;
            loop {
                let n = ring.pop_block(&mut buf.buf, DRAIN_BLOCK);
                if n > 0 {
                    self.block_drains += 1;
                    self.block_drained_records += n as u64;
                    break;
                }
                self.consumer_stalls += 1;
                spins += 1;
                if spins.is_multiple_of(SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let rec = buf.buf[buf.cursor];
        buf.cursor += 1;
        self.pops += 1;
        if self.pops.is_multiple_of(OCCUPANCY_SAMPLE_EVERY) {
            self.occupancy_sum += self.rings[core][vm].occupancy() as u64;
            self.occupancy_samples += 1;
        }
        rec
    }

    /// Stops and joins the producers, returning the run's pipeline
    /// telemetry. Idempotent: later calls return the same stats.
    pub fn finish(&mut self) -> PipelineStats {
        self.stop.store(true, Ordering::Release);
        for handle in self.handles.drain(..) {
            let report = handle.join().expect("pipeline producer panicked");
            self.staged_total += report.staged;
            self.producer_stalls_total += report.stalls;
            self.per_producer.push(ProducerPerf {
                staged: report.staged,
                stalls: report.stalls,
            });
        }
        PipelineStats {
            producers: self.producers,
            records_staged: self.staged_total,
            records_committed: self.pops,
            producer_stalls: self.producer_stalls_total,
            consumer_stalls: self.consumer_stalls,
            ring_capacity: self.ring_capacity,
            occupancy_sum: self.occupancy_sum,
            occupancy_samples: self.occupancy_samples,
            block_drains: self.block_drains,
            block_drained_records: self.block_drained_records,
            per_producer: self.per_producer.clone(),
        }
    }
}

impl Drop for StagedStreams {
    /// Never leak spinning producer threads, even if `finish` was not
    /// called (e.g. a panic unwinding through the commit stage).
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.handles.drain(..) {
            drop(handle.join());
        }
    }
}

/// The producer loop: round-robin over the owned slots, staging up to
/// [`BATCH`] records into any ring with space; back off when every ring
/// is full (commit is the bottleneck — the desired steady state).
fn produce(mut slots: Vec<Slot>, stop: &AtomicBool, live: &LiveCounters) -> ProducerReport {
    let mut scratch: Vec<StagedAccess> = Vec::with_capacity(BATCH);
    let mut staged: u64 = 0;
    let mut stalls: u64 = 0;
    while !stop.load(Ordering::Acquire) {
        let mut pushed_any = false;
        for slot in &mut slots {
            let space = slot.out.space().min(BATCH);
            if space == 0 {
                continue;
            }
            scratch.clear();
            match slot.gen.as_trace_mut() {
                // v2 replay: records already carry the packed TLB keys
                // for this slot's ASID, so staging is a pure copy.
                Some(trace) if trace.is_staged_for(slot.asid) => {
                    for _ in 0..space {
                        let (acc, hint) = trace.next_staged();
                        scratch.push(StagedAccess { acc, hint });
                    }
                }
                _ => {
                    for _ in 0..space {
                        scratch.push(StagedAccess::stage(slot.gen.next_access(), slot.asid));
                    }
                }
            }
            let pushed = slot.out.push_batch(&scratch);
            debug_assert_eq!(pushed, space, "sole producer saw space vanish");
            staged += pushed as u64;
            live.staged.fetch_add(pushed as u64, Ordering::Relaxed);
            pushed_any = true;
        }
        if !pushed_any {
            stalls += 1;
            live.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        }
    }
    ProducerReport { staged, stalls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_workloads::BenchKind;

    fn generators(vms: usize, cores: usize) -> Vec<Vec<AnyGenerator>> {
        (0..vms)
            .map(|vm| {
                (0..cores)
                    .map(|core| {
                        BenchKind::Gups.build_generator(0x1000 + (vm * cores + core) as u64, 0.05)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn staged_streams_match_direct_generation() {
        let (vms, cores) = (2, 2);
        let asids = [Asid::new(1), Asid::new(2)];
        let mut streams = StagedStreams::spawn(generators(vms, cores), &asids, 2, 64);
        // Reference: identical seeds, driven inline.
        let mut reference = generators(vms, cores);
        for round in 0..2_000usize {
            // Pop in a schedule the producers cannot predict.
            let core = round % cores;
            let vm = (round / 7) % vms;
            let got = streams.next(core, vm);
            let want = reference[vm][core].next_access();
            assert_eq!(got.acc, want, "round {round}");
            assert_eq!(
                got.hint,
                csalt_types::TranslationHint::compute(want.vaddr, asids[vm])
            );
        }
        let stats = streams.finish();
        assert_eq!(stats.records_committed, 2_000);
        assert!(stats.records_staged >= 2_000);
        assert_eq!(stats.producers, 2);
        assert!(
            stats.block_drained_records >= stats.records_committed,
            "every committed record arrived via a block drain"
        );
        assert!(
            stats.block_drains <= stats.block_drained_records,
            "a drain delivers at least one record"
        );
    }

    #[test]
    fn staged_trace_replay_matches_inline_staging() {
        use csalt_workloads::TraceFile;
        // Record a short trace, stage it for the run ASID, and check
        // the producer's zero-repack path emits the same stream (same
        // accesses, same keys) as staging the raw generator inline.
        let asid = Asid::new(1);
        let mut recorded = Vec::new();
        {
            let mut g = BenchKind::Gups.build(7, 0.05);
            for _ in 0..256 {
                recorded.push(g.next_access());
            }
        }
        let mut trace = TraceFile::from_records(recorded.clone());
        trace.restage(asid);
        let threads = vec![vec![AnyGenerator::Trace(trace)]];
        let mut streams = StagedStreams::spawn(threads, &[asid], 1, 64);
        for round in 0..1_000usize {
            let got = streams.next(0, 0);
            let want = recorded[round % recorded.len()];
            assert_eq!(got.acc, want, "round {round}");
            assert_eq!(
                got.hint,
                csalt_types::TranslationHint::compute(want.vaddr, asid)
            );
        }
        streams.finish();
    }

    #[test]
    fn finish_is_idempotent_and_drop_safe() {
        let asids = [Asid::new(1)];
        let mut streams = StagedStreams::spawn(generators(1, 1), &asids, 1, 16);
        let _ = streams.next(0, 0);
        let a = streams.finish();
        let b = streams.finish();
        assert_eq!(a.records_committed, b.records_committed);
        drop(streams);
    }

    #[test]
    fn progress_tracks_the_run_and_agrees_with_finish() {
        let asids = [Asid::new(1)];
        let mut streams = StagedStreams::spawn(generators(1, 1), &asids, 1, 64);
        for _ in 0..500 {
            let _ = streams.next(0, 0);
        }
        let p = streams.progress();
        assert_eq!(p.records_committed, 500);
        assert!(p.records_staged >= 1, "producer has staged something");
        assert!(p.block_drains >= 1, "commit went through the block path");
        assert!(p.block_drained_records >= p.records_committed);
        let stats = streams.finish();
        assert_eq!(stats.records_committed, 500);
        assert!(stats.records_staged >= p.records_staged);
        assert_eq!(stats.per_producer.len(), 1);
        assert_eq!(
            stats.per_producer.iter().map(|p| p.staged).sum::<u64>(),
            stats.records_staged,
            "per-producer breakdown sums to the total"
        );
    }

    #[test]
    fn producers_for_clamps() {
        assert_eq!(StagedStreams::producers_for(8, 0), 1);
        assert!(StagedStreams::producers_for(8, 8) >= 1);
        assert!(StagedStreams::producers_for(2, 8) <= 2);
    }
}
