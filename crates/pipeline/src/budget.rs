//! The workspace-wide worker-thread budget.
//!
//! Two subsystems spawn compute threads: the sweep scheduler (one
//! worker per in-flight configuration, `--jobs`) and the pipeline
//! (producer threads per simulation). Each alone clamps itself to
//! `available_parallelism`, but composed naively they multiply — a
//! sweep of 8 workers whose every simulation spawns 8 producers would
//! put 64 runnable threads on an 8-way host. Both sides instead draw
//! from this one ledger: reservations are granted up to the host's
//! parallelism and returned on drop, so `sweep workers + pipeline
//! producers ≤ available_parallelism` holds at every instant (unless a
//! caller explicitly forces a minimum, e.g. `CSALT_PIPELINE=force`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A ledger of schedulable worker threads.
#[derive(Debug)]
pub struct ThreadBudget {
    capacity: usize,
    used: AtomicUsize,
}

impl ThreadBudget {
    /// The process-wide budget, capacity = `available_parallelism`.
    pub fn global() -> &'static ThreadBudget {
        static GLOBAL: OnceLock<ThreadBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadBudget::with_capacity(host_parallelism()))
    }

    /// A budget with an explicit capacity (tests; the process uses
    /// [`ThreadBudget::global`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            used: AtomicUsize::new(0),
        }
    }

    /// Total schedulable threads.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Threads currently reserved.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Reserves up to `want` threads, granting whatever is still free
    /// (possibly zero). The grant is returned when the reservation
    /// drops.
    pub fn reserve(&self, want: usize) -> Reservation<'_> {
        self.reserve_at_least(want, 0)
    }

    /// Reserves up to `want` threads but never fewer than `min`, even
    /// if that oversubscribes the host — the escape hatch behind
    /// `CSALT_PIPELINE=force` (and the sweep's guarantee of one
    /// worker). `min` is clamped to `want`.
    pub fn reserve_at_least(&self, want: usize, min: usize) -> Reservation<'_> {
        let min = min.min(want);
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            let free = self.capacity.saturating_sub(used);
            let grant = want.min(free).max(min);
            if grant == 0 {
                return Reservation {
                    budget: self,
                    granted: 0,
                };
            }
            match self.used.compare_exchange_weak(
                used,
                used + grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Reservation {
                        budget: self,
                        granted: grant,
                    }
                }
                Err(actual) => used = actual,
            }
        }
    }
}

/// Host hardware parallelism (1 if the OS cannot say).
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// A granted share of a [`ThreadBudget`]; returns the share on drop.
#[derive(Debug)]
pub struct Reservation<'a> {
    budget: &'a ThreadBudget,
    granted: usize,
}

impl Reservation<'_> {
    /// Threads this reservation holds.
    #[must_use]
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.budget.used.fetch_sub(self.granted, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity_then_zero() {
        let b = ThreadBudget::with_capacity(4);
        let r1 = b.reserve(3);
        assert_eq!(r1.granted(), 3);
        let r2 = b.reserve(3);
        assert_eq!(r2.granted(), 1, "only the remainder is free");
        let r3 = b.reserve(2);
        assert_eq!(r3.granted(), 0, "budget exhausted");
        assert_eq!(b.in_use(), 4);
    }

    #[test]
    fn drop_returns_the_grant() {
        let b = ThreadBudget::with_capacity(2);
        {
            let r = b.reserve(2);
            assert_eq!(r.granted(), 2);
            assert_eq!(b.in_use(), 2);
        }
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.reserve(1).granted(), 1);
    }

    #[test]
    fn forced_minimum_oversubscribes() {
        let b = ThreadBudget::with_capacity(1);
        let r1 = b.reserve(1);
        assert_eq!(r1.granted(), 1);
        let r2 = b.reserve_at_least(4, 1);
        assert_eq!(r2.granted(), 1, "forced floor wins over exhaustion");
        assert_eq!(b.in_use(), 2, "oversubscription is accounted");
    }

    #[test]
    fn global_budget_matches_host() {
        assert_eq!(ThreadBudget::global().capacity(), host_parallelism());
    }
}
