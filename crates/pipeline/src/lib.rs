//! Deterministic pipeline-parallel trace production.
//!
//! A CSALT simulation interleaves two very different kinds of work per
//! access: *trace generation* (Zipf/power-law sampling, RNG, hot-window
//! drift — pure, state-free with respect to the modelled machine) and
//! *hierarchy commit* (TLB lookups, cache accesses, cycle accounting —
//! inherently serial, since every access observes the state left by the
//! previous one). This crate overlaps the two: producer threads run the
//! per-(VM, core) generators ahead of time, stage each access together
//! with its pure precomputation (packed TLB keys) into bounded
//! lock-free SPSC rings, and the simulator's existing loop becomes a
//! *commit stage* that pops records in the exact order the inline
//! engine would have generated them.
//!
//! # Why the result is bit-identical
//!
//! Each `(VM, core)` generator is a pure function of its seed: the
//! stream of accesses it produces does not depend on the hierarchy, the
//! schedule, or the other generators. The only scheduling decision that
//! *does* depend on simulated state — which VM a core runs after a
//! quantum expiry (cycle counts feed back into switch times) — stays in
//! the serial commit stage. With one ring per `(core, VM)` pair, the
//! commit stage pops from exactly the generator the inline engine would
//! have called `next_access` on, so every access, in order, is
//! identical, and by induction so is every derived counter. The staged
//! precomputation (packed `(vpn, size, asid)` keys) is itself a pure
//! function of the access, shared with the inline path via
//! [`csalt_types::TranslationHint`].
//!
//! # Modules
//!
//! * [`spsc`] — the hand-rolled bounded lock-free single-producer
//!   single-consumer ring (cache-line-padded atomics, batch publish).
//! * [`staged`] — the fixed-width staged access record.
//! * [`budget`] — the workspace-wide thread budget shared with the
//!   sweep scheduler, so pipeline producers and sweep workers never
//!   oversubscribe the host together.
//! * [`source`] — producer threads plus the consumer-side façade the
//!   simulator's commit stage pulls from.

#![forbid(unsafe_code)]

pub mod budget;
pub mod source;
pub mod spsc;
pub mod staged;

pub use budget::{Reservation, ThreadBudget};
pub use source::{PipelineProgress, PipelineStats, ProducerPerf, StagedStreams};
pub use spsc::{ring, Consumer, Producer, Record};
pub use staged::StagedAccess;
