//! The staged access record: one trace access plus its pure
//! precomputation, in a fixed four-word wire format.

use crate::spsc::Record;
use csalt_types::{AccessType, Asid, MemAccess, TranslationHint, VirtAddr};

/// One pre-produced access: the generator's [`MemAccess`] and the
/// state-independent translation work ([`TranslationHint`]: packed
/// `(vpn, size, asid)` TLB keys) hoisted onto the producer thread.
///
/// Crosses the SPSC ring as four `u64` words: the virtual address, the
/// instruction gap with the write bit folded into bit 0, and the two
/// packed keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedAccess {
    /// The access exactly as the generator produced it.
    pub acc: MemAccess,
    /// Prepacked TLB keys for the access under its VM's ASID.
    pub hint: TranslationHint,
}

impl StagedAccess {
    /// Stages one access for `asid`: computes the packed TLB keys the
    /// commit stage's hierarchy lookups will consume.
    #[inline]
    #[must_use]
    pub fn stage(acc: MemAccess, asid: Asid) -> Self {
        Self {
            acc,
            hint: TranslationHint::compute(acc.vaddr, asid),
        }
    }
}

impl Record for StagedAccess {
    const WORDS: usize = 4;

    #[inline]
    fn encode(&self, out: &mut [u64]) {
        out[0] = self.acc.vaddr.raw();
        out[1] = (u64::from(self.acc.gap) << 1) | u64::from(self.acc.ty.is_write());
        out[2] = self.hint.packed_4k;
        out[3] = self.hint.packed_2m;
    }

    #[inline]
    fn decode(words: &[u64]) -> Self {
        let ty = if words[1] & 1 == 1 {
            AccessType::Write
        } else {
            AccessType::Read
        };
        Self {
            acc: MemAccess {
                vaddr: VirtAddr::new(words[0]),
                ty,
                gap: (words[1] >> 1) as u32,
            },
            hint: TranslationHint {
                packed_4k: words[2],
                packed_2m: words[3],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips() {
        for (ty, gap) in [(AccessType::Read, 0u32), (AccessType::Write, 4_000_000)] {
            let acc = MemAccess {
                vaddr: VirtAddr::new(0x7fff_1234_5678),
                ty,
                gap,
            };
            let staged = StagedAccess::stage(acc, Asid::new(9));
            let mut words = [0u64; 4];
            staged.encode(&mut words);
            assert_eq!(StagedAccess::decode(&words), staged);
        }
    }

    #[test]
    fn hint_matches_types_computation() {
        let acc = MemAccess {
            vaddr: VirtAddr::new(0xdead_b000),
            ty: AccessType::Read,
            gap: 3,
        };
        let staged = StagedAccess::stage(acc, Asid::new(2));
        assert_eq!(
            staged.hint,
            TranslationHint::compute(acc.vaddr, Asid::new(2))
        );
    }
}
