//! Property tests for the SPSC ring: FIFO order and exactly-once
//! delivery under randomized push/pop batch interleavings, randomized
//! capacities, and multi-word records.

use csalt_pipeline::{ring, Record, StagedAccess};
use csalt_types::{AccessType, Asid, MemAccess, VirtAddr};
use proptest::prelude::*;

proptest! {
    /// Interleave randomized-size push batches and pop bursts: every
    /// record comes out exactly once, in push order, and no record is
    /// invented, lost, or duplicated.
    #[test]
    fn fifo_exactly_once_under_random_batches(
        capacity in 1usize..64,
        ops in prop::collection::vec((any::<bool>(), 1usize..40), 1..200),
    ) {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for (is_push, amount) in ops {
            if is_push {
                let batch: Vec<u64> = (next_push..next_push + amount as u64).collect();
                let pushed = tx.push_batch(&batch);
                prop_assert!(pushed <= batch.len());
                // Everything reported pushed is now committed, in order.
                next_push += pushed as u64;
            } else {
                for _ in 0..amount {
                    match rx.pop() {
                        Some(v) => {
                            prop_assert_eq!(v, next_pop, "out of order or duplicated");
                            next_pop += 1;
                        }
                        None => {
                            // Empty is only legal when everything pushed
                            // has been popped.
                            prop_assert_eq!(next_pop, next_push, "record lost");
                            break;
                        }
                    }
                }
            }
            prop_assert!(next_pop <= next_push, "popped a record never pushed");
        }
        // Drain: the ring must hand back exactly the outstanding ones.
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push, "drain lost records");
    }

    /// Block drains observe exactly the FIFO order of single pops: a
    /// randomized mix of `pop` and `pop_block` calls (randomized block
    /// caps included) yields the same sequence single pops would,
    /// with nothing lost, invented, or duplicated.
    #[test]
    fn pop_block_matches_single_pop_order(
        capacity in 1usize..64,
        ops in prop::collection::vec((0u8..3, 1usize..40), 1..200),
    ) {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        let mut block = Vec::new();
        for (kind, amount) in ops {
            match kind {
                0 => {
                    let batch: Vec<u64> = (next_push..next_push + amount as u64).collect();
                    next_push += tx.push_batch(&batch) as u64;
                }
                1 => {
                    for _ in 0..amount {
                        match rx.pop() {
                            Some(v) => {
                                prop_assert_eq!(v, next_pop, "single pop out of order");
                                next_pop += 1;
                            }
                            None => break,
                        }
                    }
                }
                _ => {
                    block.clear();
                    let n = rx.pop_block(&mut block, amount);
                    prop_assert_eq!(n, block.len());
                    prop_assert!(n <= amount, "block exceeded its cap");
                    for &v in &block {
                        prop_assert_eq!(v, next_pop, "block drain out of order");
                        next_pop += 1;
                    }
                }
            }
            prop_assert!(next_pop <= next_push, "popped a record never pushed");
        }
        // Drain with maximal blocks: exactly the outstanding records.
        loop {
            block.clear();
            if rx.pop_block(&mut block, usize::MAX) == 0 {
                break;
            }
            for &v in &block {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        prop_assert_eq!(next_pop, next_push, "drain lost records");
        prop_assert_eq!(rx.pop(), None);
    }

    /// A full ring truncates the batch rather than overwriting: the
    /// pushed prefix survives verbatim.
    #[test]
    fn full_ring_never_overwrites(
        capacity in 1usize..16,
        overfill in 1usize..50,
    ) {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let cap = tx.capacity();
        let batch: Vec<u64> = (0..(cap + overfill) as u64).collect();
        let pushed = tx.push_batch(&batch);
        prop_assert_eq!(pushed, cap, "exactly the capacity fits");
        prop_assert_eq!(tx.push_batch(&[999]), 0, "no space left");
        for want in 0..cap as u64 {
            prop_assert_eq!(rx.pop(), Some(want));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Multi-word records (the real 4-word staged access) round-trip
    /// through the ring bit-exactly in FIFO order.
    #[test]
    fn staged_access_records_roundtrip(
        asid in 1u16..100,
        accesses in prop::collection::vec(
            (0u64..(1u64 << 47), any::<bool>(), 0u32..10_000),
            1..64,
        ),
    ) {
        let (mut tx, mut rx) = ring::<StagedAccess>(64);
        let staged: Vec<StagedAccess> = accesses
            .iter()
            .map(|&(va, write, gap)| {
                let acc = MemAccess {
                    vaddr: VirtAddr::new(va),
                    ty: if write { AccessType::Write } else { AccessType::Read },
                    gap,
                };
                StagedAccess::stage(acc, Asid::new(asid))
            })
            .collect();
        prop_assert_eq!(tx.push_batch(&staged), staged.len());
        for want in &staged {
            let got = rx.pop().expect("record present");
            prop_assert_eq!(&got, want);
        }
        prop_assert_eq!(rx.pop(), None);
    }
}

/// Sanity outside proptest: the `Record` encoding is position-
/// independent (a record decodes the same from any slot).
#[test]
fn record_words_are_position_independent() {
    let acc = MemAccess {
        vaddr: VirtAddr::new(0xabcd_ef12_3456),
        ty: AccessType::Write,
        gap: 77,
    };
    let staged = StagedAccess::stage(acc, Asid::new(5));
    let mut words = [0u64; 4];
    staged.encode(&mut words);
    assert_eq!(StagedAccess::decode(&words), staged);
}
