//! Multi-thread stress on the [`ThreadBudget`] ledger — the real-world
//! counterpart of `csalt-audit modelcheck`'s bounded M004/M005 proof:
//! the model checker exhausts every schedule of a tiny instance, and
//! this test hammers a real instance with real threads to cover the
//! sizes the model cannot.

use csalt_pipeline::budget::ThreadBudget;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// Hammer reserve/release from many threads; under the (non-forced)
/// `reserve` path, the sum of live grants must never exceed capacity,
/// and once every thread stops the ledger must read zero.
#[test]
fn concurrent_reservations_never_exceed_capacity_and_drain() {
    const CAPACITY: usize = 4;
    const THREADS: usize = 8;
    const ROUNDS: usize = 2_000;

    let budget = Arc::new(ThreadBudget::with_capacity(CAPACITY));
    let start = Arc::new(Barrier::new(THREADS));
    let overcap = Arc::new(AtomicBool::new(false));
    let grants_seen = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let budget = Arc::clone(&budget);
            let start = Arc::clone(&start);
            let overcap = Arc::clone(&overcap);
            let grants_seen = Arc::clone(&grants_seen);
            thread::spawn(move || {
                start.wait();
                for round in 0..ROUNDS {
                    // Vary the ask so grants of every size (0..=3) occur.
                    let want = 1 + (tid + round) % 3;
                    let r = budget.reserve(want);
                    assert!(r.granted() <= want, "granted more than asked");
                    // While held, the ledger may transiently exceed the
                    // *sum of grants* we can observe (other threads'
                    // in_use reads race), but it must never exceed
                    // capacity on this path: no forced minimums here.
                    if budget.in_use() > CAPACITY {
                        overcap.store(true, Ordering::Relaxed);
                    }
                    if r.granted() > 0 {
                        grants_seen.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(r);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert!(
        !overcap.load(Ordering::Relaxed),
        "ledger exceeded capacity under contention"
    );
    assert_eq!(budget.in_use(), 0, "ledger did not drain to zero");
    // The hammer must have actually exercised the grant path, not
    // starved every thread into zero-grants.
    assert!(
        grants_seen.load(Ordering::Relaxed) > THREADS * ROUNDS / 4,
        "too few non-zero grants: {}",
        grants_seen.load(Ordering::Relaxed)
    );
    // A fresh full-capacity reservation succeeds after the drain.
    assert_eq!(budget.reserve(CAPACITY).granted(), CAPACITY);
}

/// Forced minimums may oversubscribe while held, but every forced
/// grant is still accounted and returned: the ledger drains to zero.
#[test]
fn forced_minimums_are_returned_on_drop() {
    const CAPACITY: usize = 2;
    const THREADS: usize = 6;
    const ROUNDS: usize = 1_000;

    let budget = Arc::new(ThreadBudget::with_capacity(CAPACITY));
    let start = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let budget = Arc::clone(&budget);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for _ in 0..ROUNDS {
                    let r = budget.reserve_at_least(2, 1);
                    assert!(r.granted() >= 1, "forced floor must always grant");
                    drop(r);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert_eq!(budget.in_use(), 0, "forced grants leaked");
}
