//! Paging-Structure Caches (Intel PSC / AMD PWC): small MMU caches that
//! hold partial translations so a walk can skip upper page-table levels.
//!
//! Table 2 gives the evaluated sizes: 2 PML4 entries, 4 PDP entries,
//! 32 PDE entries, all with 2-cycle hits. A PSC entry at level *L* maps a
//! virtual-address prefix (the indices of levels 4..L+1) to the physical
//! base of the level-*L* table, letting the walker start reading there.

use csalt_types::{Asid, CkptError, CkptReader, CkptWriter, Cycle, PhysAddr, PscConfig, VirtAddr};

/// One fully-associative LRU cache of prefix → table-base mappings.
///
/// Keys are packed into a single `u64` (`prefix << 16 | asid`) in a flat
/// array scanned branchlessly — every slot is visited so the compiler
/// can vectorize the compare (at most 32 entries, this beats a binary
/// search and keeps eviction an in-place overwrite). Recency is tracked
/// with monotonically increasing stamps: a touch rewrites one stamp and
/// eviction replaces the minimum-stamp entry — exact LRU semantics with
/// no recency-list movement on hits.
#[derive(Debug, Clone)]
struct PrefixCache {
    capacity: usize,
    /// Packed keys, parallel to `tables` and `stamps`.
    keys: Vec<u64>,
    /// Cached table bases.
    tables: Vec<PhysAddr>,
    /// Last-touch stamps; the minimum marks the LRU entry.
    stamps: Vec<u64>,
    /// Monotonic touch counter.
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Packs an (ASID, prefix) pair into one comparable word. Prefixes hold
/// at most four 9-bit level indexes (36 bits), leaving the low 16 bits
/// for the ASID.
#[inline]
fn pack_key(asid: Asid, prefix: u64) -> u64 {
    debug_assert!(prefix < 1u64 << 48, "prefix overflows packed key");
    (prefix << 16) | u64::from(asid.raw())
}

impl PrefixCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            keys: Vec::with_capacity(capacity),
            tables: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn touch(&mut self, pos: usize) {
        self.clock += 1;
        self.stamps[pos] = self.clock;
    }

    /// Position of `key`, scanning every slot unconditionally (keys are
    /// unique, so last-match equals only-match).
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut pos = usize::MAX;
        for (i, &k) in self.keys.iter().enumerate() {
            if k == key {
                pos = i;
            }
        }
        (pos != usize::MAX).then_some(pos)
    }

    fn lookup(&mut self, key: u64) -> Option<PhysAddr> {
        if let Some(pos) = self.find(key) {
            self.touch(pos);
            self.hits += 1;
            Some(self.tables[pos])
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: u64, table: PhysAddr) {
        if let Some(pos) = self.find(key) {
            self.tables[pos] = table;
            self.touch(pos);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.keys.len() < self.capacity {
            self.keys.push(key);
            self.tables.push(table);
            self.stamps.push(0);
            let pos = self.keys.len() - 1;
            self.touch(pos);
            return;
        }
        // Replace the LRU (minimum-stamp) entry in place.
        let pos = self
            .stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.keys[pos] = key;
        self.tables[pos] = table;
        self.touch(pos);
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.tables.clear();
        self.stamps.clear();
    }

    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len64(self.capacity);
        w.slice_u64(&self.keys);
        let tables: Vec<u64> = self.tables.iter().map(|t| t.raw()).collect();
        w.slice_u64(&tables);
        w.slice_u64(&self.stamps);
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.len64()? != self.capacity {
            return Err(CkptError::Mismatch("psc capacity"));
        }
        let keys = r.vec_u64()?;
        let tables = r.vec_u64()?;
        let stamps = r.vec_u64()?;
        if keys.len() > self.capacity || tables.len() != keys.len() || stamps.len() != keys.len() {
            return Err(CkptError::Corrupt("psc entry arrays"));
        }
        self.keys = keys;
        self.tables = tables.into_iter().map(PhysAddr::new).collect();
        self.stamps = stamps;
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

/// Where a PSC-assisted walk starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PscStart {
    /// The level whose table the walker reads first (4 if nothing hit).
    pub level: u8,
    /// That table's physical base (the root when `level == 4`).
    pub table: PhysAddr,
    /// Number of PSC lookups that hit while resolving the start point.
    pub hits: u32,
}

/// The three-level paging-structure cache of Table 2.
///
/// `lookup` finds the deepest cached prefix for a virtual address;
/// `fill` installs the table bases discovered by a completed walk.
#[derive(Debug, Clone)]
pub struct PagingStructureCache {
    /// Caches the L3-table base keyed by the root-to-L4 indices (PML4
    /// cache).
    pml4: PrefixCache,
    /// Caches the L2-table base keyed by root-to-L3 indices (PDP cache).
    pdp: PrefixCache,
    /// Caches the L1-table base keyed by root-to-L2 indices (PDE cache).
    pde: PrefixCache,
    latency: Cycle,
    /// Depth of the tables being walked (4, or 5 for LA57).
    root_level: u8,
}

impl PagingStructureCache {
    /// Builds the PSC for 4-level tables.
    pub fn new(cfg: PscConfig) -> Self {
        Self::with_root_level(cfg, 4)
    }

    /// Builds the PSC for tables of the given depth (4 or 5). With
    /// 5-level paging each prefix key additionally includes the PML5
    /// index, so subtrees under different roots never alias.
    ///
    /// # Panics
    ///
    /// Panics unless `root_level` is 4 or 5.
    pub fn with_root_level(cfg: PscConfig, root_level: u8) -> Self {
        assert!(root_level == 4 || root_level == 5, "4- or 5-level only");
        Self {
            pml4: PrefixCache::new(cfg.pml4_entries as usize),
            pdp: PrefixCache::new(cfg.pdp_entries as usize),
            pde: PrefixCache::new(cfg.pde_entries as usize),
            latency: cfg.latency,
            root_level,
        }
    }

    /// PSC hit latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total hits across the three caches.
    pub fn hits(&self) -> u64 {
        self.pml4.hits + self.pdp.hits + self.pde.hits
    }

    /// Total misses across the three caches.
    pub fn misses(&self) -> u64 {
        self.pml4.misses + self.pdp.misses + self.pde.misses
    }

    /// The prefix key for a level's cache: the 9-bit indices of all
    /// levels above `table_level`, up to the root. Concatenated in level
    /// order those indices are exactly the VA bits from the level's index
    /// base to the root's, so one shift + mask extracts them all.
    #[inline]
    fn prefix(&self, va: VirtAddr, table_level: u8) -> u64 {
        let low = 12 + 9 * u32::from(table_level);
        let width = 9 * u32::from(self.root_level - table_level);
        (va.raw() >> low) & ((1u64 << width) - 1)
    }

    /// Finds the deepest starting point the PSC can provide for `va`,
    /// probing PDE, then PDP, then PML4 (deepest skip first — one probe
    /// sequence per walk as in hardware).
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr, root: PhysAddr) -> PscStart {
        let mut hits = 0;
        let pde_key = pack_key(asid, self.prefix(va, 1));
        if let Some(t) = self.pde.lookup(pde_key) {
            return PscStart {
                level: 1,
                table: t,
                hits: 1,
            };
        }
        let pdp_key = pack_key(asid, self.prefix(va, 2));
        if let Some(t) = self.pdp.lookup(pdp_key) {
            return PscStart {
                level: 2,
                table: t,
                hits: 1,
            };
        }
        let pml4_key = pack_key(asid, self.prefix(va, 3));
        if let Some(t) = self.pml4.lookup(pml4_key) {
            hits += 1;
            return PscStart {
                level: 3,
                table: t,
                hits,
            };
        }
        PscStart {
            level: self.root_level,
            table: root,
            hits: 0,
        }
    }

    /// Installs the table base discovered for `table_level` (3, 2 or 1)
    /// during a walk of `va`.
    pub fn fill(&mut self, asid: Asid, va: VirtAddr, table_level: u8, table: PhysAddr) {
        let key = pack_key(asid, self.prefix(va, table_level));
        match table_level {
            3 => self.pml4.insert(key, table),
            2 => self.pdp.insert(key, table),
            1 => self.pde.insert(key, table),
            _ => {}
        }
    }

    /// Invalidates everything (e.g. on a simulated TLB shootdown).
    pub fn flush(&mut self) {
        self.pml4.clear();
        self.pdp.clear();
        self.pde.clear();
    }

    /// Serializes all three prefix caches (keys, table bases, LRU
    /// stamps, clock and hit/miss counters) plus the depth guard.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u8(self.root_level);
        self.pml4.ckpt_save(w);
        self.pdp.ckpt_save(w);
        self.pde.ckpt_save(w);
    }

    /// Restores state written by [`PagingStructureCache::ckpt_save`];
    /// capacities and depth must match this (config-constructed) PSC.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u8()? != self.root_level {
            return Err(CkptError::Mismatch("psc root level"));
        }
        self.pml4.ckpt_load(r)?;
        self.pdp.ckpt_load(r)?;
        self.pde.ckpt_load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psc() -> PagingStructureCache {
        PagingStructureCache::new(PscConfig {
            pml4_entries: 2,
            pdp_entries: 4,
            pde_entries: 32,
            latency: 2,
        })
    }

    const ROOT: PhysAddr = PhysAddr::new(0x1000);

    #[test]
    fn cold_lookup_starts_at_root() {
        let mut p = psc();
        let s = p.lookup(Asid::new(1), VirtAddr::new(0x7fff_0000_0000), ROOT);
        assert_eq!(s.level, 4);
        assert_eq!(s.table, ROOT);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn pde_fill_skips_to_level_one() {
        let mut p = psc();
        let a = Asid::new(1);
        let va = VirtAddr::new(0x7f12_3456_7000);
        p.fill(a, va, 1, PhysAddr::new(0x9000));
        let s = p.lookup(a, va, ROOT);
        assert_eq!(s.level, 1);
        assert_eq!(s.table, PhysAddr::new(0x9000));
        // Same 2 MiB region, different page offset: same PDE entry.
        let near = VirtAddr::new(0x7f12_3456_8000);
        assert_eq!(p.lookup(a, near, ROOT).level, 1);
    }

    #[test]
    fn deeper_cache_wins_over_shallower() {
        let mut p = psc();
        let a = Asid::new(1);
        let va = VirtAddr::new(0x10_0000_0000);
        p.fill(a, va, 3, PhysAddr::new(0x2000));
        p.fill(a, va, 2, PhysAddr::new(0x3000));
        let s = p.lookup(a, va, ROOT);
        assert_eq!(s.level, 2, "PDP skip beats PML4 skip");
    }

    #[test]
    fn asids_are_isolated() {
        let mut p = psc();
        let va = VirtAddr::new(0x7000_0000);
        p.fill(Asid::new(1), va, 1, PhysAddr::new(0x9000));
        assert_eq!(p.lookup(Asid::new(2), va, ROOT).level, 4);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut p = psc(); // PML4 capacity = 2
        let a = Asid::new(0);
        // Three distinct L4 indices.
        let va1 = VirtAddr::new(1u64 << 39);
        let va2 = VirtAddr::new(2u64 << 39);
        let va3 = VirtAddr::new(3u64 << 39);
        p.fill(a, va1, 3, PhysAddr::new(0x100));
        p.fill(a, va2, 3, PhysAddr::new(0x200));
        p.fill(a, va3, 3, PhysAddr::new(0x300)); // evicts va1's entry
        assert_eq!(p.lookup(a, va1, ROOT).level, 4);
        assert_eq!(p.lookup(a, va2, ROOT).level, 3);
        assert_eq!(p.lookup(a, va3, ROOT).level, 3);
    }

    #[test]
    fn flush_clears_everything() {
        let mut p = psc();
        let a = Asid::new(0);
        let va = VirtAddr::new(0x1234_5000);
        p.fill(a, va, 1, PhysAddr::new(0x9000));
        p.flush();
        assert_eq!(p.lookup(a, va, ROOT).level, 4);
    }

    #[test]
    fn distinct_prefixes_do_not_alias() {
        let mut p = psc();
        let a = Asid::new(0);
        // Same L2 index bits but different L3 index must not alias in
        // the PDE cache.
        let va1 = VirtAddr::new(0x0000_0040_0000); // L3=0, L2=2
        let va2 = VirtAddr::new(0x0000_8040_0000); // L3=2, L2=2
        p.fill(a, va1, 1, PhysAddr::new(0xaaaa000));
        let s = p.lookup(a, va2, ROOT);
        assert_eq!(s.level, 4, "no false PDE hit");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = psc();
        let a = Asid::new(0);
        let va = VirtAddr::new(0x5000);
        p.lookup(a, va, ROOT); // 3 misses (pde, pdp, pml4)
        p.fill(a, va, 1, PhysAddr::new(0x9000));
        p.lookup(a, va, ROOT); // 1 hit (pde)
        assert_eq!(p.hits(), 1);
        assert!(p.misses() >= 3);
    }
}
