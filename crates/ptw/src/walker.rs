//! The page walkers: native 1-dimensional and virtualized 2-dimensional
//! (nested) walks, with paging-structure-cache acceleration (Figure 2 of
//! the paper).
//!
//! A native walk reads up to 4 PTEs. A nested walk interleaves guest and
//! host dimensions: each guest-level PTE is named by a guest-physical
//! address that must itself be host-walked before the PTE can be read, so
//! the worst case is `5 host walks × 4 + 4 guest PTE reads = 24` memory
//! accesses — the cost Table 1 shows exploding under virtualization. The
//! walkers return the ordered physical addresses of every access so the
//! memory hierarchy can charge (and cache) them.

use crate::frames::FrameAllocator;
use crate::psc::PagingStructureCache;
use crate::radix::{HugePagePolicy, RadixPageTable, WalkPath};
use csalt_types::{
    Asid, CkptError, CkptReader, CkptWriter, PhysAddr, PhysFrame, PscConfig, VirtAddr, VirtPage,
};

/// Counters shared by both walkers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Completed walks.
    pub walks: u64,
    /// Total memory accesses issued (PTE reads).
    pub memory_accesses: u64,
    /// Accesses skipped thanks to the PSC.
    pub psc_skipped: u64,
}

impl WalkStats {
    /// Average memory accesses per walk.
    pub fn avg_accesses(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.walks as f64
        }
    }

    /// Serializes the three counters.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.walks);
        w.u64(self.memory_accesses);
        w.u64(self.psc_skipped);
    }

    /// Restores counters written by [`WalkStats::ckpt_save`].
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.walks = r.u64()?;
        self.memory_accesses = r.u64()?;
        self.psc_skipped = r.u64()?;
        Ok(())
    }
}

/// Which page-table dimension one PTE read belongs to.
///
/// Native (1D) walks read only the machine dimension and report every
/// step as [`WalkDim::Host`]; nested (2D) walks interleave guest PTE
/// reads with the embedded host walks that locate them, and telemetry
/// uses the tag to attribute walk cycles per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkDim {
    /// A guest-dimension PTE read (gVA → gPA table).
    Guest,
    /// A host/machine-dimension PTE read (gPA → hPA table, or any step
    /// of a native walk).
    Host,
}

/// One PTE read performed during a walk: where it landed in machine
/// memory and which dimension issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteRead {
    /// Machine-physical address of the PTE.
    pub addr: PhysAddr,
    /// Issuing dimension.
    pub dim: WalkDim,
}

/// The outcome of a translation-producing walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The terminal virtual page the translation covers (its size is the
    /// effective size — `min(guest, host)` for nested walks).
    pub page: VirtPage,
    /// The frame backing that page in machine-physical memory.
    pub frame: PhysFrame,
    /// Ordered PTE reads performed (machine-physical, dimension-tagged);
    /// the caller routes these through the cache hierarchy.
    pub accesses: Vec<PteRead>,
}

/// The translation a walk produced, without its access list — the
/// return value of the `walk_into` variants, which append their PTE
/// reads to a caller-owned scratch buffer instead of allocating one
/// per walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The terminal virtual page the translation covers.
    pub page: VirtPage,
    /// The frame backing that page in machine-physical memory.
    pub frame: PhysFrame,
}

/// A native (non-virtualized) address space: one page table over machine
/// memory, walked in one dimension.
#[derive(Debug)]
pub struct NativeWalker {
    table: RadixPageTable,
    psc: PagingStructureCache,
    asid: Asid,
    stats: WalkStats,
}

impl NativeWalker {
    /// Creates a walker over 4-level tables.
    pub fn new(
        asid: Asid,
        alloc: &mut FrameAllocator,
        policy: HugePagePolicy,
        psc_cfg: PscConfig,
    ) -> Self {
        Self::with_levels(asid, alloc, policy, psc_cfg, 4)
    }

    /// Creates a walker over tables of the given depth (4 or 5).
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(
        asid: Asid,
        alloc: &mut FrameAllocator,
        policy: HugePagePolicy,
        psc_cfg: PscConfig,
        levels: u8,
    ) -> Self {
        Self {
            table: RadixPageTable::with_levels(alloc, policy, levels),
            psc: PagingStructureCache::with_root_level(psc_cfg, levels),
            asid,
            stats: WalkStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WalkStats {
        &self.stats
    }

    /// The underlying page table (for inspection).
    pub fn table(&self) -> &RadixPageTable {
        &self.table
    }

    /// Walks `va`, demand-mapping as needed. PSC hits skip upper-level
    /// reads.
    ///
    /// Allocates the access list; the hot path uses
    /// [`NativeWalker::walk_into`] with a reused scratch buffer instead.
    pub fn walk(&mut self, va: VirtAddr, alloc: &mut FrameAllocator) -> WalkOutcome {
        let mut accesses = Vec::with_capacity(8);
        let t = self.walk_into(va, alloc, &mut accesses);
        WalkOutcome {
            page: t.page,
            frame: t.frame,
            accesses,
        }
    }

    /// Like [`NativeWalker::walk`], but appends the PTE reads to `out`
    /// (not cleared) instead of allocating a fresh list.
    pub fn walk_into(
        &mut self,
        va: VirtAddr,
        alloc: &mut FrameAllocator,
        out: &mut Vec<PteRead>,
    ) -> Translation {
        let path = self.table.walk_or_map(va, alloc);
        let start = self.psc.lookup(self.asid, va, self.table.root());
        let before = out.len();
        for r in path.refs.iter().filter(|r| r.level <= start.level) {
            out.push(PteRead {
                addr: r.addr,
                dim: WalkDim::Host,
            });
        }
        let read = out.len() - before;
        self.fill_psc(va, &path);
        self.stats.walks += 1;
        self.stats.memory_accesses += read as u64;
        self.stats.psc_skipped += (path.refs.len() - read) as u64;
        Translation {
            page: self.table.terminal_page(va),
            frame: path.frame,
        }
    }

    fn fill_psc(&mut self, va: VirtAddr, path: &WalkPath) {
        // Each ref at level l was read from the level-l table; the table
        // *discovered* by that read serves level l-1. Fill caches for
        // every non-root table on the path.
        for r in &path.refs {
            if r.level < 4 {
                self.psc
                    .fill(self.asid, va, r.level, PhysAddr::new(r.addr.raw() & !0xfff));
            }
        }
    }

    /// Serializes the page table, PSC and walk counters.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u16(self.asid.raw());
        self.table.ckpt_save(w);
        self.psc.ckpt_save(w);
        self.stats.ckpt_save(w);
    }

    /// Restores state written by [`NativeWalker::ckpt_save`].
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u16()? != self.asid.raw() {
            return Err(CkptError::Mismatch("native walker asid"));
        }
        self.table.ckpt_load(r)?;
        self.psc.ckpt_load(r)?;
        self.stats.ckpt_load(r)
    }
}

/// One VM's paired address spaces: the guest's page table (gVA → gPA,
/// nodes and frames in guest-physical space) and the host's nested table
/// for this VM (gPA → hPA, nodes and frames in machine memory).
#[derive(Debug)]
pub struct GuestAddressSpace {
    asid: Asid,
    guest: RadixPageTable,
    guest_alloc: FrameAllocator,
    host: RadixPageTable,
}

impl GuestAddressSpace {
    /// Creates a VM address space.
    ///
    /// * `guest_phys_base`/`guest_phys_size` — the VM's gPA region (its
    ///   "RAM"); must be 2 MiB granular.
    /// * `host_alloc` — machine memory, shared across VMs.
    pub fn new(
        asid: Asid,
        guest_phys_base: u64,
        guest_phys_size: u64,
        policy: HugePagePolicy,
        host_alloc: &mut FrameAllocator,
    ) -> Self {
        Self::with_levels(
            asid,
            guest_phys_base,
            guest_phys_size,
            policy,
            host_alloc,
            4,
        )
    }

    /// Creates a VM address space with page tables of the given depth
    /// in both dimensions (4, or 5 for LA57 — the paper's introduction
    /// notes the deeper tables "only strengthen the motivation").
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(
        asid: Asid,
        guest_phys_base: u64,
        guest_phys_size: u64,
        policy: HugePagePolicy,
        host_alloc: &mut FrameAllocator,
        levels: u8,
    ) -> Self {
        let mut guest_alloc = FrameAllocator::new(guest_phys_base, guest_phys_size);
        let guest = RadixPageTable::with_levels(&mut guest_alloc, policy, levels);
        // The host maps gPA space; gPA locality mirrors guest allocation,
        // and the EPT uses the same huge-page policy hashed over gPAs.
        let host = RadixPageTable::with_levels(host_alloc, policy, levels);
        Self {
            asid,
            guest,
            guest_alloc,
            host,
        }
    }

    /// The VM's ASID.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Guest pages mapped so far.
    pub fn guest_mapped_pages(&self) -> u64 {
        self.guest.mapped_pages()
    }

    /// Serializes both dimensions' page tables and the guest-physical
    /// allocator.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u16(self.asid.raw());
        self.guest.ckpt_save(w);
        self.guest_alloc.ckpt_save(w);
        self.host.ckpt_save(w);
    }

    /// Restores state written by [`GuestAddressSpace::ckpt_save`].
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u16()? != self.asid.raw() {
            return Err(CkptError::Mismatch("guest address space asid"));
        }
        self.guest.ckpt_load(r)?;
        self.guest_alloc.ckpt_load(r)?;
        self.host.ckpt_load(r)
    }
}

/// The 2-dimensional (nested) page walker with guest- and host-side PSCs.
#[derive(Debug)]
pub struct NestedWalker {
    /// Guest-dimension PSC: gVA prefix → guest table gPA (a "nested PSC"
    /// in Bhargava et al.'s taxonomy). A hit skips the guest level *and*
    /// the host walk that locating its PTE would have needed.
    guest_psc: PagingStructureCache,
    /// Host-dimension PSC: gPA prefix → host table hPA, consulted by
    /// every embedded host walk.
    host_psc: PagingStructureCache,
    stats: WalkStats,
}

impl NestedWalker {
    /// Creates a nested walker for 4-level tables.
    pub fn new(psc_cfg: PscConfig) -> Self {
        Self::with_levels(psc_cfg, 4)
    }

    /// Creates a nested walker for tables of the given depth. The worst
    /// case grows from 24 accesses (4-level) to 35 (5-level).
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(psc_cfg: PscConfig, levels: u8) -> Self {
        Self {
            guest_psc: PagingStructureCache::with_root_level(psc_cfg, levels),
            host_psc: PagingStructureCache::with_root_level(psc_cfg, levels),
            stats: WalkStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WalkStats {
        &self.stats
    }

    /// Host-walks a guest-physical address: translates `gpa` through the
    /// VM's nested table, appending the PTE reads to `accesses`.
    fn host_translate(
        &mut self,
        space: &mut GuestAddressSpace,
        gpa: PhysAddr,
        host_alloc: &mut FrameAllocator,
        accesses: &mut Vec<PteRead>,
    ) -> WalkPath {
        let as_va = VirtAddr::new(gpa.raw());
        let path = space.host.walk_or_map(as_va, host_alloc);
        let start = self.host_psc.lookup(space.asid, as_va, space.host.root());
        for r in path.refs.iter().filter(|r| r.level <= start.level) {
            accesses.push(PteRead {
                addr: r.addr,
                dim: WalkDim::Host,
            });
        }
        self.stats.psc_skipped += path.refs.iter().filter(|r| r.level > start.level).count() as u64;
        for r in &path.refs {
            if r.level < 4 {
                self.host_psc.fill(
                    space.asid,
                    as_va,
                    r.level,
                    PhysAddr::new(r.addr.raw() & !0xfff),
                );
            }
        }
        path
    }

    /// Performs the full 2D walk of Figure 2b for `gva`, demand-mapping
    /// both dimensions. Returns the effective translation and the
    /// ordered machine-physical PTE reads (≤ 24).
    ///
    /// Allocates the access list; the hot path uses
    /// [`NestedWalker::walk_into`] with a reused scratch buffer instead.
    pub fn walk(
        &mut self,
        space: &mut GuestAddressSpace,
        gva: VirtAddr,
        host_alloc: &mut FrameAllocator,
    ) -> WalkOutcome {
        let mut accesses = Vec::with_capacity(24);
        let t = self.walk_into(space, gva, host_alloc, &mut accesses);
        WalkOutcome {
            page: t.page,
            frame: t.frame,
            accesses,
        }
    }

    /// Like [`NestedWalker::walk`], but appends the PTE reads to
    /// `accesses` (not cleared) instead of allocating a fresh list.
    pub fn walk_into(
        &mut self,
        space: &mut GuestAddressSpace,
        gva: VirtAddr,
        host_alloc: &mut FrameAllocator,
        accesses: &mut Vec<PteRead>,
    ) -> Translation {
        let before = accesses.len();

        // Guest-dimension walk (structure first, then charge accesses
        // for the levels the guest PSC could not skip).
        let (guest_path, guest_start_level) = {
            // Split borrows: the guest table and its allocator live in
            // `space`; walk_or_map needs both.
            let GuestAddressSpace {
                guest, guest_alloc, ..
            } = space;
            let path = guest.walk_or_map(gva, guest_alloc);
            let start = self.guest_psc.lookup(space.asid, gva, space.guest.root());
            (path, start.level)
        };

        for r in &guest_path.refs {
            if r.level > guest_start_level {
                // Skipped by the guest PSC: neither the host walk nor
                // the PTE read happens (5 accesses saved per level).
                self.stats.psc_skipped += 1;
                continue;
            }
            // Locate the guest PTE in machine memory (embedded host
            // walk), then read it.
            let pte_host = self.host_translate(space, r.addr, host_alloc, accesses);
            let pte_hpa = pte_host.frame.translate(VirtAddr::new(r.addr.raw()));
            accesses.push(PteRead {
                addr: pte_hpa,
                dim: WalkDim::Guest,
            });
        }
        for r in &guest_path.refs {
            if r.level < 4 {
                self.guest_psc.fill(
                    space.asid,
                    gva,
                    r.level,
                    PhysAddr::new(r.addr.raw() & !0xfff),
                );
            }
        }

        // Final host walk: translate the terminal guest-physical address.
        let guest_page = space.guest.terminal_page(gva);
        let gpa_of_page = guest_path.frame.translate(guest_page.base());
        let final_host = self.host_translate(space, gpa_of_page, host_alloc, accesses);

        // Effective translation: min(guest, host) page size.
        let eff_size = guest_page.size().min(final_host.frame.size());
        let eff_page = gva.page(eff_size);
        let gpa_eff_base = guest_path.frame.translate(eff_page.base());
        let hpa_eff_base = final_host
            .frame
            .translate(VirtAddr::new(gpa_eff_base.raw()));
        let frame = hpa_eff_base.frame(eff_size);

        self.stats.walks += 1;
        self.stats.memory_accesses += (accesses.len() - before) as u64;
        Translation {
            page: eff_page,
            frame,
        }
    }

    /// Serializes both dimension PSCs and the walk counters.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.guest_psc.ckpt_save(w);
        self.host_psc.ckpt_save(w);
        self.stats.ckpt_save(w);
    }

    /// Restores state written by [`NestedWalker::ckpt_save`].
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.guest_psc.ckpt_load(r)?;
        self.host_psc.ckpt_load(r)?;
        self.stats.ckpt_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::{PageSize, SystemConfig};

    const MB2: u64 = 2 << 20;

    fn host_alloc() -> FrameAllocator {
        FrameAllocator::new(0, 2048 * MB2).without_scramble()
    }

    fn psc_cfg() -> PscConfig {
        SystemConfig::skylake().psc
    }

    fn tiny_psc() -> PscConfig {
        // Disabled PSC (zero capacity): all levels must be read.
        PscConfig {
            pml4_entries: 0,
            pdp_entries: 0,
            pde_entries: 0,
            latency: 2,
        }
    }

    #[test]
    fn native_cold_walk_reads_four_ptes() {
        let mut alloc = host_alloc();
        let mut w = NativeWalker::new(Asid::new(0), &mut alloc, HugePagePolicy::NONE, psc_cfg());
        let out = w.walk(VirtAddr::new(0x7f00_1234_5000), &mut alloc);
        assert_eq!(out.accesses.len(), 4);
        assert_eq!(out.page.size(), PageSize::Size4K);
        assert_eq!(w.stats().walks, 1);
        assert_eq!(w.stats().memory_accesses, 4);
    }

    #[test]
    fn native_warm_walk_uses_psc() {
        let mut alloc = host_alloc();
        let mut w = NativeWalker::new(Asid::new(0), &mut alloc, HugePagePolicy::NONE, psc_cfg());
        w.walk(VirtAddr::new(0x1000), &mut alloc);
        // Neighbouring page: PDE cache supplies the L1 table → 1 read.
        let out = w.walk(VirtAddr::new(0x2000), &mut alloc);
        assert_eq!(out.accesses.len(), 1);
        assert_eq!(w.stats().psc_skipped, 3);
    }

    #[test]
    fn native_translation_is_stable_across_walks() {
        let mut alloc = host_alloc();
        let mut w = NativeWalker::new(Asid::new(0), &mut alloc, HugePagePolicy::NONE, psc_cfg());
        let a = w.walk(VirtAddr::new(0x4242_0000), &mut alloc);
        let b = w.walk(VirtAddr::new(0x4242_0000), &mut alloc);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.page, b.page);
    }

    #[test]
    fn nested_cold_walk_is_twenty_four_accesses() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            512 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(tiny_psc());
        let out = w.walk(&mut space, VirtAddr::new(0x7f00_1234_5000), &mut halloc);
        // First-ever walk maps structures on the fly; the embedded host
        // walks each read 4 PTEs, the guest dimension reads 4 PTEs:
        // 4 × (4 + 1) + 4 = 24.
        assert_eq!(out.accesses.len(), 24);
        assert_eq!(w.stats().avg_accesses(), 24.0);
        // Dimension tags: exactly 4 guest PTE reads, 20 host-walk reads.
        let guest = out
            .accesses
            .iter()
            .filter(|a| a.dim == WalkDim::Guest)
            .count();
        assert_eq!(guest, 4);
        assert_eq!(out.accesses.len() - guest, 20);
    }

    #[test]
    fn nested_warm_walk_is_much_cheaper() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            512 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(psc_cfg());
        w.walk(&mut space, VirtAddr::new(0x1000), &mut halloc);
        let out = w.walk(&mut space, VirtAddr::new(0x2000), &mut halloc);
        // Guest PSC skips levels 4..2 (their host walks too); the
        // remaining guest L1 read and final host walk are PSC-assisted.
        assert!(
            out.accesses.len() <= 6,
            "warm walk took {} accesses",
            out.accesses.len()
        );
    }

    #[test]
    fn nested_translation_is_stable() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            256 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(psc_cfg());
        let a = w.walk(&mut space, VirtAddr::new(0x1234_5678), &mut halloc);
        let b = w.walk(&mut space, VirtAddr::new(0x1234_5678), &mut halloc);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.page, b.page);
        assert_eq!(a.page.size(), PageSize::Size4K);
    }

    #[test]
    fn nested_distinct_pages_get_distinct_frames() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            256 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(psc_cfg());
        let mut frames = std::collections::HashSet::new();
        for i in 0..100u64 {
            let out = w.walk(&mut space, VirtAddr::new(i * 4096), &mut halloc);
            assert!(frames.insert(out.frame.base().raw()), "duplicate frame");
        }
    }

    #[test]
    fn nested_accesses_land_in_machine_memory() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(2),
            1024 * MB2,
            256 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(psc_cfg());
        let out = w.walk(&mut space, VirtAddr::new(0x7777_0000), &mut halloc);
        for a in &out.accesses {
            assert!(
                a.addr.raw() < 2048 * MB2,
                "access {} beyond machine memory",
                a.addr
            );
        }
    }

    #[test]
    fn two_spaces_do_not_share_translations() {
        let mut halloc = host_alloc();
        let mut s1 = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            128 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut s2 = GuestAddressSpace::new(
            Asid::new(2),
            1024 * MB2,
            128 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
        );
        let mut w = NestedWalker::new(psc_cfg());
        let a = w.walk(&mut s1, VirtAddr::new(0x9000), &mut halloc);
        let b = w.walk(&mut s2, VirtAddr::new(0x9000), &mut halloc);
        assert_ne!(a.frame, b.frame, "same gVA, different VMs, different hPA");
    }

    #[test]
    fn guest_huge_pages_shorten_the_walk() {
        let mut halloc = host_alloc();
        let mut space = GuestAddressSpace::new(
            Asid::new(1),
            1024 * MB2,
            512 * MB2,
            HugePagePolicy { fraction_2m: 1.0 },
            &mut halloc,
        );
        let mut w = NestedWalker::new(tiny_psc());
        let out = w.walk(&mut space, VirtAddr::new(0x4000_0000), &mut halloc);
        // 3 guest levels × 5 + final host walk: 3 levels have host walks
        // of ≤ 3 reads (EPT is huge too) ⇒ strictly under 24.
        assert!(out.accesses.len() < 24);
        assert_eq!(out.page.size(), PageSize::Size2M);
    }
}

#[cfg(test)]
mod five_level_tests {
    use super::*;
    use csalt_types::{PscConfig, SystemConfig};

    const MB2: u64 = 2 << 20;

    fn no_psc() -> PscConfig {
        PscConfig {
            pml4_entries: 0,
            pdp_entries: 0,
            pde_entries: 0,
            latency: 2,
        }
    }

    #[test]
    fn native_5level_cold_walk_reads_five_ptes() {
        let mut alloc = FrameAllocator::new(0, 2048 * MB2).without_scramble();
        let mut w =
            NativeWalker::with_levels(Asid::new(0), &mut alloc, HugePagePolicy::NONE, no_psc(), 5);
        let out = w.walk(VirtAddr::new(0x7f00_1234_5000), &mut alloc);
        assert_eq!(out.accesses.len(), 5);
    }

    #[test]
    fn nested_5level_cold_walk_is_thirty_five_accesses() {
        let mut halloc = FrameAllocator::new(0, 2048 * MB2).without_scramble();
        let mut space = GuestAddressSpace::with_levels(
            Asid::new(1),
            1024 * MB2,
            512 * MB2,
            HugePagePolicy::NONE,
            &mut halloc,
            5,
        );
        let mut w = NestedWalker::with_levels(no_psc(), 5);
        let out = w.walk(&mut space, VirtAddr::new(0x7f00_1234_5000), &mut halloc);
        // 5 guest levels × (5 host + 1 read) + 5 final host = 35.
        assert_eq!(out.accesses.len(), 35);
    }

    #[test]
    fn five_level_psc_separates_distant_pml5_subtrees() {
        let mut alloc = FrameAllocator::new(0, 2048 * MB2).without_scramble();
        let mut w = NativeWalker::with_levels(
            Asid::new(0),
            &mut alloc,
            HugePagePolicy::NONE,
            SystemConfig::skylake().psc,
            5,
        );
        // Two addresses with identical L4..L1 indices but different L5.
        let a = VirtAddr::new(0x0000_1234_5000);
        let b = VirtAddr::new((1u64 << 48) | 0x0000_1234_5000);
        w.walk(a, &mut alloc);
        let out_b = w.walk(b, &mut alloc);
        // The PDE entry cached for `a` must not serve `b`: a false hit
        // would read only 1 PTE here.
        assert!(out_b.accesses.len() >= 5, "PSC aliased across PML5 roots");
    }

    #[test]
    fn four_and_five_level_translate_consistently() {
        let mut a4 = FrameAllocator::new(0, 512 * MB2).without_scramble();
        let mut w4 = NativeWalker::new(Asid::new(0), &mut a4, HugePagePolicy::NONE, no_psc());
        let mut a5 = FrameAllocator::new(0, 512 * MB2).without_scramble();
        let mut w5 =
            NativeWalker::with_levels(Asid::new(0), &mut a5, HugePagePolicy::NONE, no_psc(), 5);
        let va = VirtAddr::new(0xdead_b000);
        let o4 = w4.walk(va, &mut a4);
        let o5 = w5.walk(va, &mut a5);
        assert_eq!(o4.page, o5.page, "terminal page agrees across depths");
        assert_eq!(o4.accesses.len() + 1, o5.accesses.len());
    }
}
