//! A 4-level x86-64-style radix page table, built lazily over a simulated
//! physical address space.
//!
//! Each table node occupies a real 4 KiB frame in its address space, so a
//! walk yields the *physical addresses of the PTEs it reads* — these are
//! what the conventional translation scheme feeds through the data caches
//! (and what pollutes them, §2.2).
//!
//! Nodes live in an arena: one `Vec` of flat 512-entry frames linked by
//! arena index, so a 4-level walk is four array indexes instead of four
//! hash probes. This is the simulator's hottest structure — every L2 TLB
//! miss in the conventional scheme, and every large-TLB miss elsewhere,
//! walks it (several times per access when virtualized).

use crate::frames::FrameAllocator;
use csalt_types::{
    CkptError, CkptReader, CkptWriter, PageSize, PhysAddr, PhysFrame, VirtAddr, VirtPage,
};
use std::ops::Deref;

/// Entries per radix node (9 index bits per level).
const NODE_ENTRIES: usize = 512;

/// A page-table entry as stored in a node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtEntry {
    /// Not yet mapped.
    Empty,
    /// Points at the next-level table: its arena index (for the walk)
    /// and its frame base (for the PTE addresses the caches see).
    Table { node: u32, pa: PhysAddr },
    /// Terminal mapping (at level 1 for 4 KiB pages, level 2 for 2 MiB).
    Leaf(PhysFrame),
}

/// One 4 KiB table frame: its physical base and 512 slots.
#[derive(Debug, Clone)]
struct NodeFrame {
    base: PhysAddr,
    slots: Box<[PtEntry; NODE_ENTRIES]>,
}

impl NodeFrame {
    fn new(base: PhysAddr) -> Self {
        Self {
            base,
            slots: Box::new([PtEntry::Empty; NODE_ENTRIES]),
        }
    }
}

/// One PTE reference performed during a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteRef {
    /// Physical address of the 8-byte entry that was read.
    pub addr: PhysAddr,
    /// The level it belongs to (4 = root … 1 = leaf level).
    pub level: u8,
}

/// The ordered PTE reads of one walk: an inline fixed-capacity list
/// (max 5 levels), so returning a walk allocates nothing.
///
/// Dereferences to `[PteRef]`; use it like a slice.
#[derive(Debug, Clone, Copy)]
pub struct PteRefs {
    len: u8,
    items: [PteRef; 5],
}

impl PteRefs {
    const EMPTY_REF: PteRef = PteRef {
        addr: PhysAddr::new(0),
        level: 0,
    };

    /// An empty list.
    pub const fn new() -> Self {
        Self {
            len: 0,
            items: [Self::EMPTY_REF; 5],
        }
    }

    /// Appends a reference.
    ///
    /// # Panics
    ///
    /// Panics beyond 5 entries (deeper than any supported table).
    #[inline]
    pub fn push(&mut self, r: PteRef) {
        self.items[self.len as usize] = r;
        self.len += 1;
    }
}

impl Default for PteRefs {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for PteRefs {
    type Target = [PteRef];

    #[inline]
    fn deref(&self) -> &[PteRef] {
        &self.items[..self.len as usize]
    }
}

impl PartialEq for PteRefs {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for PteRefs {}

impl<'a> IntoIterator for &'a PteRefs {
    type Item = &'a PteRef;
    type IntoIter = std::slice::Iter<'a, PteRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The outcome of walking (and, if needed, demand-mapping) an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkPath {
    /// The terminal frame translating the address.
    pub frame: PhysFrame,
    /// The PTE reads performed, root first (1–5 entries).
    pub refs: PteRefs,
}

/// Chooses terminal page sizes for demand mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HugePagePolicy {
    /// Fraction of 2 MiB-aligned regions backed by huge pages, in
    /// `[0, 1]`. Transparent Huge Pages promotes hot regions; the
    /// decision here is a deterministic per-region hash.
    pub fraction_2m: f64,
}

impl HugePagePolicy {
    /// No huge pages: everything is 4 KiB.
    pub const NONE: HugePagePolicy = HugePagePolicy { fraction_2m: 0.0 };

    /// Decides whether the 2 MiB region containing `va` is a huge page.
    pub fn is_huge(&self, va: VirtAddr) -> bool {
        if self.fraction_2m <= 0.0 {
            return false;
        }
        if self.fraction_2m >= 1.0 {
            return true;
        }
        let region = va.raw() >> PageSize::Size2M.shift();
        let h = region
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.fraction_2m
    }
}

/// A lazily-populated 4-level radix page table.
///
/// The table's nodes and leaf frames live in the address space served by
/// the [`FrameAllocator`] passed to [`RadixPageTable::walk_or_map`] — a
/// guest table allocates guest-physical frames, the host table
/// host-physical frames. Node 0 of the arena is the root.
#[derive(Debug, Clone)]
pub struct RadixPageTable {
    nodes: Vec<NodeFrame>,
    policy: HugePagePolicy,
    levels: u8,
    mapped_pages: u64,
}

impl RadixPageTable {
    /// Creates an empty 4-level table whose root node is allocated from
    /// `alloc`.
    pub fn new(alloc: &mut FrameAllocator, policy: HugePagePolicy) -> Self {
        Self::with_levels(alloc, policy, 4)
    }

    /// Creates a table with the given depth: 4 (x86-64) or 5 (Intel's
    /// LA57 extension — the paper's introduction notes 5-level paging
    /// "will only strengthen the motivation" for CSALT, and the
    /// `ext_5level` bench quantifies exactly that).
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(alloc: &mut FrameAllocator, policy: HugePagePolicy, levels: u8) -> Self {
        assert!(levels == 4 || levels == 5, "only 4- or 5-level paging");
        let root = alloc.alloc(PageSize::Size4K).base();
        Self {
            nodes: vec![NodeFrame::new(root)],
            policy,
            levels,
            mapped_pages: 0,
        }
    }

    /// The table's depth (4 or 5).
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// The root node's physical address (the CR3 analogue).
    pub fn root(&self) -> PhysAddr {
        self.nodes[0].base
    }

    /// Number of terminal pages mapped so far.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// The address of the 8-byte PTE at (`table`, `index`).
    #[inline]
    fn pte_addr(table: PhysAddr, index: u64) -> PhysAddr {
        PhysAddr::new(table.raw() + index * 8)
    }

    /// Walks `va`, demand-allocating intermediate tables and the terminal
    /// frame (honouring the huge-page policy) when absent. Returns the
    /// terminal frame and the ordered PTE reads.
    pub fn walk_or_map(&mut self, va: VirtAddr, alloc: &mut FrameAllocator) -> WalkPath {
        let huge = self.policy.is_huge(va);
        let leaf_level = if huge { 2 } else { 1 };
        let mut node = 0usize;
        let mut refs = PteRefs::new();
        for level in (1..=self.levels).rev() {
            let index = va.pt_index(level);
            refs.push(PteRef {
                addr: Self::pte_addr(self.nodes[node].base, index),
                level,
            });
            let slot = index as usize;
            if level == leaf_level {
                let frame = match self.nodes[node].slots[slot] {
                    PtEntry::Leaf(frame) => frame,
                    PtEntry::Empty => {
                        let size = if huge {
                            PageSize::Size2M
                        } else {
                            PageSize::Size4K
                        };
                        let frame = alloc.alloc(size);
                        self.nodes[node].slots[slot] = PtEntry::Leaf(frame);
                        self.mapped_pages += 1;
                        frame
                    }
                    PtEntry::Table { .. } => unreachable!("leaf level holds only leaves"),
                };
                return WalkPath { frame, refs };
            }
            node = match self.nodes[node].slots[slot] {
                PtEntry::Table { node, .. } => node as usize,
                PtEntry::Empty => {
                    let pa = alloc.alloc(PageSize::Size4K).base();
                    let next = self.nodes.len();
                    self.nodes[node].slots[slot] = PtEntry::Table {
                        node: u32::try_from(next).expect("arena outgrew u32 indexes"),
                        pa,
                    };
                    self.nodes.push(NodeFrame::new(pa));
                    next
                }
                PtEntry::Leaf(_) => unreachable!("leaf above leaf level"),
            };
        }
        unreachable!("loop always returns at the leaf level")
    }

    /// Walks `va` without mapping; `None` if the address is unmapped.
    pub fn walk(&self, va: VirtAddr) -> Option<WalkPath> {
        let mut node = 0usize;
        let mut refs = PteRefs::new();
        for level in (1..=self.levels).rev() {
            let index = va.pt_index(level);
            refs.push(PteRef {
                addr: Self::pte_addr(self.nodes[node].base, index),
                level,
            });
            match self.nodes[node].slots[index as usize] {
                PtEntry::Empty => return None,
                PtEntry::Leaf(frame) => return Some(WalkPath { frame, refs }),
                PtEntry::Table { node: next, .. } => node = next as usize,
            }
        }
        None
    }

    /// The terminal virtual page `va` belongs to once mapped (size per
    /// the huge-page policy).
    pub fn terminal_page(&self, va: VirtAddr) -> VirtPage {
        let size = if self.policy.is_huge(va) {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        };
        va.page(size)
    }

    /// Serializes the node arena, the table depth guard and the
    /// mapped-page counter. Each node writes its base, a 512-byte slot
    /// tag array, and then fields only for the non-empty slots — empty
    /// slots (most of every sparsely-populated node) cost one byte.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u8(self.levels);
        w.u64(self.mapped_pages);
        w.len64(self.nodes.len());
        for node in &self.nodes {
            w.u64(node.base.raw());
            w.iter_u8(
                NODE_ENTRIES,
                node.slots.iter().map(|slot| match slot {
                    PtEntry::Empty => 0u8,
                    PtEntry::Table { .. } => 1u8,
                    PtEntry::Leaf(_) => 2u8,
                }),
            );
            for slot in node.slots.iter() {
                match slot {
                    PtEntry::Empty => {}
                    PtEntry::Table { node, pa } => {
                        w.u64(u64::from(*node));
                        w.u64(pa.raw());
                    }
                    PtEntry::Leaf(frame) => {
                        w.u64(frame.pfn());
                        w.u8(match frame.size() {
                            PageSize::Size4K => 0,
                            PageSize::Size2M => 1,
                            PageSize::Size1G => 2,
                        });
                    }
                }
            }
        }
    }

    /// Restores state written by [`RadixPageTable::ckpt_save`],
    /// replacing this table's arena wholesale. The node count is
    /// validated against the remaining payload before any allocation.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u8()? != self.levels {
            return Err(CkptError::Mismatch("page table depth"));
        }
        let mapped_pages = r.u64()?;
        let count = r.len64()?;
        if count == 0 {
            return Err(CkptError::Corrupt("page table has no root"));
        }
        // Each node is at least 8 bytes of base + a sparse tag array's
        // count word and presence bitmap; bound the arena allocation on
        // that floor before reserving anything (slot fields validate
        // incrementally as they are read).
        let node_floor = 8u64 + 8 + (NODE_ENTRIES as u64).div_ceil(8);
        let need = (count as u64)
            .checked_mul(node_floor)
            .ok_or(CkptError::Truncated)?;
        if need > r.remaining() as u64 {
            return Err(CkptError::Truncated);
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let base = PhysAddr::new(r.u64()?);
            let tags = r.vec_u8()?;
            if tags.len() != NODE_ENTRIES {
                return Err(CkptError::Mismatch("node slot count"));
            }
            let mut node = NodeFrame::new(base);
            for (slot, &tag) in node.slots.iter_mut().zip(tags.iter()) {
                *slot = match tag {
                    0 => PtEntry::Empty,
                    1 => {
                        let a = r.u64()?;
                        let pa = r.u64()?;
                        let idx = u32::try_from(a).map_err(|_| CkptError::Corrupt("node index"))?;
                        if idx as usize >= count {
                            return Err(CkptError::Corrupt("node index out of range"));
                        }
                        PtEntry::Table {
                            node: idx,
                            pa: PhysAddr::new(pa),
                        }
                    }
                    2 => {
                        let pfn = r.u64()?;
                        PtEntry::Leaf(PhysFrame::from_pfn(
                            pfn,
                            match r.u8()? {
                                0 => PageSize::Size4K,
                                1 => PageSize::Size2M,
                                2 => PageSize::Size1G,
                                _ => return Err(CkptError::Corrupt("leaf page size")),
                            },
                        ))
                    }
                    _ => return Err(CkptError::Corrupt("pte slot tag")),
                };
            }
            nodes.push(node);
        }
        self.nodes = nodes;
        self.mapped_pages = mapped_pages;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB2: u64 = 2 << 20;

    fn alloc() -> FrameAllocator {
        FrameAllocator::new(0, 256 * MB2).without_scramble()
    }

    #[test]
    fn walk_or_map_takes_four_levels_for_4k() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let va = VirtAddr::new(0x7f12_3456_7000);
        let path = pt.walk_or_map(va, &mut a);
        assert_eq!(path.refs.len(), 4);
        assert_eq!(
            path.refs.iter().map(|r| r.level).collect::<Vec<_>>(),
            vec![4, 3, 2, 1]
        );
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn translation_is_stable() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let va = VirtAddr::new(0x1234_5678);
        let first = pt.walk_or_map(va, &mut a);
        let second = pt.walk_or_map(va, &mut a);
        assert_eq!(first.frame, second.frame);
        assert_eq!(first.refs, second.refs);
        assert_eq!(pt.mapped_pages(), 1, "no double mapping");
    }

    #[test]
    fn nearby_pages_share_upper_tables() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let p1 = pt.walk_or_map(VirtAddr::new(0x1000), &mut a);
        let p2 = pt.walk_or_map(VirtAddr::new(0x2000), &mut a);
        // Same L4..L2 tables, different leaf PTE slots.
        for i in 0..3 {
            assert_eq!(
                p1.refs[i].addr.raw() & !0xfff,
                p2.refs[i].addr.raw() & !0xfff,
                "level {} table differs",
                4 - i
            );
        }
        assert_ne!(p1.refs[3].addr, p2.refs[3].addr);
        assert_ne!(p1.frame, p2.frame);
    }

    #[test]
    fn distant_pages_use_distinct_tables() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let p1 = pt.walk_or_map(VirtAddr::new(0x0000_0000_1000), &mut a);
        let p2 = pt.walk_or_map(VirtAddr::new(0x7f00_0000_1000), &mut a);
        // Only the root is shared.
        assert_eq!(
            p1.refs[0].addr.raw() & !0xfff,
            p2.refs[0].addr.raw() & !0xfff
        );
        assert_ne!(
            p1.refs[1].addr.raw() & !0xfff,
            p2.refs[1].addr.raw() & !0xfff
        );
    }

    #[test]
    fn walk_without_map_returns_none_for_unmapped() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        assert!(pt.walk(VirtAddr::new(0x5000)).is_none());
        pt.walk_or_map(VirtAddr::new(0x5000), &mut a);
        let w = pt.walk(VirtAddr::new(0x5000)).expect("mapped now");
        assert_eq!(w.refs.len(), 4);
    }

    #[test]
    fn huge_pages_terminate_at_level_2() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy { fraction_2m: 1.0 });
        let va = VirtAddr::new(0x4030_2010);
        let path = pt.walk_or_map(va, &mut a);
        assert_eq!(path.refs.len(), 3, "L4, L3, L2 only");
        assert_eq!(path.frame.size(), PageSize::Size2M);
        assert_eq!(pt.terminal_page(va).size(), PageSize::Size2M);
    }

    #[test]
    fn huge_policy_fraction_is_roughly_respected() {
        let policy = HugePagePolicy { fraction_2m: 0.3 };
        let huge = (0..10_000)
            .filter(|i| policy.is_huge(VirtAddr::new(i * MB2)))
            .count();
        assert!((2500..3500).contains(&huge), "got {huge}");
        assert!(!HugePagePolicy::NONE.is_huge(VirtAddr::new(0)));
    }

    #[test]
    fn frame_translates_full_address() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let va = VirtAddr::new(0xabc_def0);
        let path = pt.walk_or_map(va, &mut a);
        let pa = path.frame.translate(va);
        assert_eq!(
            pa.page_offset(PageSize::Size4K),
            va.page_offset(PageSize::Size4K)
        );
    }

    #[test]
    fn pte_addresses_lie_within_their_table_frame() {
        let mut a = alloc();
        let mut pt = RadixPageTable::new(&mut a, HugePagePolicy::NONE);
        let path = pt.walk_or_map(VirtAddr::new(0x7fff_ffff_f000), &mut a);
        for r in &path.refs {
            let offset = r.addr.raw() & 0xfff;
            assert!(offset < 4096 && offset % 8 == 0);
        }
    }

    #[test]
    fn pte_refs_compare_by_contents() {
        let mut a = PteRefs::new();
        let mut b = PteRefs::new();
        assert_eq!(a, b);
        let r = PteRef {
            addr: PhysAddr::new(0x1000),
            level: 4,
        };
        a.push(r);
        assert_ne!(a, b);
        b.push(r);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0], r);
    }
}
