//! Physical frame allocation for simulated address spaces.
//!
//! Both the host machine's physical memory and each VM's guest-physical
//! space are modelled as regions a [`FrameAllocator`] hands frames out
//! of. Allocation is a deterministic bump with a light multiplicative
//! scramble so that consecutively-allocated pages do not all land in the
//! same DRAM bank/row pattern (real allocators interleave similarly).

use csalt_types::{CkptError, CkptReader, CkptWriter, PageSize, PhysAddr, PhysFrame};

/// A bump allocator over a physical region, with 4 KiB and 2 MiB frame
/// support.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    base: u64,
    size: u64,
    next: u64,
    scramble: bool,
    allocated_4k: u64,
    allocated_2m: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 2 MiB-aligned or `size` is not a positive
    /// multiple of 2 MiB (so both frame sizes tile the region exactly).
    pub fn new(base: u64, size: u64) -> Self {
        let two_m = PageSize::Size2M.bytes();
        assert!(base.is_multiple_of(two_m), "base must be 2 MiB aligned");
        assert!(
            size > 0 && size.is_multiple_of(two_m),
            "size must be 2 MiB granular"
        );
        Self {
            base,
            size,
            next: base,
            scramble: true,
            allocated_4k: 0,
            allocated_2m: 0,
        }
    }

    /// Disables frame-number scrambling (useful for address-exactness
    /// tests).
    pub fn without_scramble(mut self) -> Self {
        self.scramble = false;
        self
    }

    /// Region base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Bytes already handed out.
    pub fn used(&self) -> u64 {
        self.next - self.base
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.base + self.size - self.next
    }

    /// Frames of each size handed out so far: `(4 KiB, 2 MiB)`.
    pub fn allocation_counts(&self) -> (u64, u64) {
        (self.allocated_4k, self.allocated_2m)
    }

    /// Allocates one frame of `size`.
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted — simulated footprints are
    /// sized by the experiment, so exhaustion is a configuration bug.
    pub fn alloc(&mut self, size: PageSize) -> PhysFrame {
        let bytes = size.bytes();
        // Align the bump pointer up to the frame size.
        let aligned = self.next.div_ceil(bytes) * bytes;
        assert!(
            aligned + bytes <= self.base + self.size,
            "frame allocator exhausted: {} of {} bytes used",
            self.used(),
            self.size
        );
        self.next = aligned + bytes;
        match size {
            PageSize::Size4K => self.allocated_4k += 1,
            PageSize::Size2M => self.allocated_2m += 1,
            PageSize::Size1G => {}
        }
        let addr = if self.scramble && size == PageSize::Size4K {
            self.scramble_4k(aligned)
        } else {
            aligned
        };
        PhysAddr::new(addr).frame(size)
    }

    /// Serializes the bump pointer and allocation counters, with the
    /// region bounds and scramble flag as guard words.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.base);
        w.u64(self.size);
        w.u64(self.next);
        w.bool(self.scramble);
        w.u64(self.allocated_4k);
        w.u64(self.allocated_2m);
    }

    /// Restores state written by [`FrameAllocator::ckpt_save`]; the
    /// region bounds and scramble flag must match this allocator's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.base || r.u64()? != self.size {
            return Err(CkptError::Mismatch("frame allocator region"));
        }
        let next = r.u64()?;
        if next < self.base || next > self.base + self.size {
            return Err(CkptError::Corrupt("frame allocator bump pointer"));
        }
        if r.bool()? != self.scramble {
            return Err(CkptError::Mismatch("frame allocator scramble flag"));
        }
        self.next = next;
        self.allocated_4k = r.u64()?;
        self.allocated_2m = r.u64()?;
        Ok(())
    }

    /// Permutes a 4 KiB frame within its 2 MiB super-frame with an
    /// invertible affine map, spreading sequential allocations across
    /// DRAM rows without ever colliding (the map is a bijection on the
    /// 512 sub-frames).
    fn scramble_4k(&self, addr: u64) -> u64 {
        let two_m = PageSize::Size2M.bytes();
        let super_base = addr / two_m * two_m;
        let sub = (addr - super_base) / PageSize::Size4K.bytes();
        // 165 is odd ⇒ coprime with 512 ⇒ bijective modulo 512.
        let scrambled = (sub * 165 + 91) % 512;
        super_base + scrambled * PageSize::Size4K.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const MB2: u64 = 2 << 20;

    #[test]
    fn frames_are_unique_and_in_region() {
        let mut a = FrameAllocator::new(0, 16 * MB2);
        let mut seen = HashSet::new();
        for _ in 0..(16 * 512) {
            let f = a.alloc(PageSize::Size4K);
            assert!(seen.insert(f.base().raw()), "duplicate frame {f:?}");
            assert!(f.base().raw() < 16 * MB2);
            assert_eq!(f.base().raw() % 4096, 0);
        }
    }

    #[test]
    fn exhaustion_panics() {
        let mut a = FrameAllocator::new(0, MB2);
        for _ in 0..512 {
            a.alloc(PageSize::Size4K);
        }
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.alloc(PageSize::Size4K)));
        assert!(r.is_err());
    }

    #[test]
    fn mixed_sizes_do_not_overlap() {
        let mut a = FrameAllocator::new(MB2 * 8, 64 * MB2);
        let f4 = a.alloc(PageSize::Size4K);
        let f2 = a.alloc(PageSize::Size2M);
        let f4b = a.alloc(PageSize::Size4K);
        // 2 MiB frame is 2 MiB aligned.
        assert_eq!(f2.base().raw() % MB2, 0);
        let r2 = f2.base().raw()..f2.base().raw() + MB2;
        assert!(!r2.contains(&f4.base().raw()));
        assert!(!r2.contains(&f4b.base().raw()));
        assert_eq!(a.allocation_counts(), (2, 1));
    }

    #[test]
    fn unscrambled_is_sequential() {
        let mut a = FrameAllocator::new(0, MB2).without_scramble();
        let f0 = a.alloc(PageSize::Size4K);
        let f1 = a.alloc(PageSize::Size4K);
        assert_eq!(f0.base().raw(), 0);
        assert_eq!(f1.base().raw(), 4096);
    }

    #[test]
    fn usage_accounting() {
        let mut a = FrameAllocator::new(0, 4 * MB2);
        assert_eq!(a.used(), 0);
        a.alloc(PageSize::Size4K);
        assert_eq!(a.used(), 4096);
        assert_eq!(a.remaining(), 4 * MB2 - 4096);
        a.alloc(PageSize::Size2M); // aligns up
        assert_eq!(a.used(), 2 * MB2);
    }

    #[test]
    #[should_panic(expected = "2 MiB aligned")]
    fn misaligned_base_rejected() {
        FrameAllocator::new(4096, MB2);
    }
}
