//! Page tables and page walkers for the CSALT simulator.
//!
//! Implements the translation substrate of §2.1 / Figure 2 of the paper:
//!
//! * [`FrameAllocator`] — deterministic physical-frame allocation for
//!   machine memory and per-VM guest-physical spaces.
//! * [`RadixPageTable`] — lazily-built 4-level x86-64 radix tables whose
//!   nodes occupy real simulated frames, so walks yield the physical
//!   addresses of the PTEs they read.
//! * [`PagingStructureCache`] — the PML4/PDP/PDE MMU caches of Table 2.
//! * [`NativeWalker`] — the 1D walk (≤ 4 accesses, Figure 2a).
//! * [`NestedWalker`] / [`GuestAddressSpace`] — the 2D virtualized walk
//!   (≤ 24 accesses, Figure 2b), with guest- and host-side PSCs.
//!
//! # Example
//!
//! ```
//! use csalt_ptw::{FrameAllocator, HugePagePolicy, NativeWalker};
//! use csalt_types::{Asid, SystemConfig, VirtAddr};
//!
//! let mut mem = FrameAllocator::new(0, 64 << 20);
//! let mut walker = NativeWalker::new(
//!     Asid::new(0),
//!     &mut mem,
//!     HugePagePolicy::NONE,
//!     SystemConfig::skylake().psc,
//! );
//! let out = walker.walk(VirtAddr::new(0x1234_5000), &mut mem);
//! assert_eq!(out.accesses.len(), 4); // cold 1D walk reads 4 PTEs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frames;
mod psc;
mod radix;
mod walker;

pub use frames::FrameAllocator;
pub use psc::{PagingStructureCache, PscStart};
pub use radix::{HugePagePolicy, PteRef, PteRefs, RadixPageTable, WalkPath};
pub use walker::{
    GuestAddressSpace, NativeWalker, NestedWalker, PteRead, Translation, WalkDim, WalkOutcome,
    WalkStats,
};
