//! # csalt — a reproduction of *CSALT: Context Switch Aware Large TLB*
//! (Marathe et al., MICRO-50, 2017)
//!
//! CSALT attacks two compounding problems of virtualized machines under
//! VM context switching: L2 TLB miss rates explode (>6× with just two
//! contexts), and the resulting translation traffic — page-table
//! entries for a conventional walker, large-L3-TLB (POM-TLB) entries
//! for state-of-the-art designs — floods the L2/L3 data caches, often
//! occupying more than half their capacity. CSALT's answer is a
//! **TLB-aware dynamic cache partitioning** scheme: per-kind
//! stack-distance profilers predict the hit rate data and translation
//! entries would each achieve at every possible way split, and each
//! epoch the split maximizing (criticality-weighted) marginal utility
//! is enforced at replacement time.
//!
//! This crate re-exports the whole simulator workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | addresses, IDs, Table 2 configuration, statistics |
//! | [`dram`] | DDR4 + die-stacked DRAM bank/row timing |
//! | [`cache`] | set-associative caches, way partitioning, NRU/BT-PLRU, DIP |
//! | [`profiler`] | MSA stack-distance profilers, MU/CWMU (Algorithms 1–3) |
//! | [`tlb`] | SRAM TLBs, the memory-resident POM-TLB, the TSB baseline |
//! | [`ptw`] | radix page tables, PSC MMU caches, 1D + 2D (nested) walkers |
//! | [`workloads`] | synthetic trace generators for the six benchmarks |
//! | [`core`] | the assembled hierarchy with every translation scheme |
//! | [`pipeline`] | lock-free SPSC rings, staged records, the shared thread budget |
//! | [`sim`] | the multi-core simulator and per-figure experiments |
//! | [`telemetry`] | recorders, per-epoch records, walk traces, latency histograms |
//! | [`audit`] | CSALT-Axxx static rules and conservation-law auditing |
//!
//! # Quickstart
//!
//! ```
//! use csalt::sim::{run, SimConfig};
//! use csalt::types::TranslationScheme;
//! use csalt::workloads::{BenchKind, WorkloadSpec};
//!
//! let mut cfg = SimConfig::new(
//!     WorkloadSpec::homogeneous("gups", BenchKind::Gups),
//!     TranslationScheme::CsaltCd,
//! );
//! cfg.system.cores = 1;            // keep the doctest fast
//! cfg.accesses_per_core = 5_000;
//! cfg.warmup_accesses_per_core = 5_000;
//! cfg.scale = 0.05;
//! let result = run(&cfg);
//! println!("IPC = {:.3}", result.ipc());
//! # assert!(result.ipc() > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/benches/` for the harnesses that regenerate every
//! table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use csalt_audit as audit;
pub use csalt_cache as cache;
pub use csalt_core as core;
pub use csalt_dram as dram;
pub use csalt_pipeline as pipeline;
pub use csalt_profiler as profiler;
pub use csalt_ptw as ptw;
pub use csalt_sim as sim;
pub use csalt_telemetry as telemetry;
pub use csalt_tlb as tlb;
pub use csalt_types as types;
pub use csalt_workloads as workloads;
