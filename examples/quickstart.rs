//! Quickstart: simulate one context-switched workload under CSALT-CD
//! and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::{BenchKind, WorkloadSpec};

fn main() {
    // Two VM instances of GUPS context-switching on every core of the
    // paper's 8-core machine (Table 2 defaults).
    let workload = WorkloadSpec::homogeneous("gups", BenchKind::Gups);
    let mut cfg = SimConfig::new(workload, TranslationScheme::CsaltCd);

    // Keep the example snappy: a shorter measured window than the
    // experiment harness uses (see csalt_sim::experiments for the
    // full-scale defaults).
    cfg.accesses_per_core = 60_000;
    cfg.warmup_accesses_per_core = 60_000;
    // Scale the 10 ms context-switch quantum with the run length so
    // switches actually happen inside the simulated window.
    cfg.system.cs_interval_cycles = 400_000;

    let result = run(&cfg);
    let snap = &result.snapshot;

    println!("workload          : {}", result.workload);
    println!("scheme            : {}", result.scheme);
    println!("instructions      : {}", result.instructions);
    println!("geomean IPC       : {:.4}", result.ipc());
    println!("L2 TLB MPKI       : {:.1}", result.l2_tlb_mpki());
    println!(
        "page walks        : {} ({:.1}% of L2 TLB misses eliminated)",
        snap.page_walks,
        snap.walk_elimination() * 100.0
    );
    println!(
        "L3 translation hit: {}% of {} cached-TLB probes",
        snap.l3
            .tlb
            .hit_rate()
            .map_or_else(|| "-".into(), |v| format!("{:.1}", v * 100.0)),
        snap.l3.tlb.accesses()
    );
    println!(
        "context switches  : {} across {} cores",
        result.context_switches,
        result.core_ipc.len()
    );
    if let (Some(l2), Some(l3)) = result.final_partitions {
        println!("final partitions  : L2 {l2} data ways, L3 {l3} data ways");
    }
}
