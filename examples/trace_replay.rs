//! Trace record & replay: capture a synthetic workload's access stream
//! to a file, then drive a full simulation from the recorded trace —
//! the same workflow the paper uses with Pin traces, and the hook for
//! feeding externally-captured traces into the simulator.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::{BenchKind, TraceFile, TraceGenerator, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let path = std::env::temp_dir().join("csalt-demo.trace");

    // 1. Record 200K accesses of pagerank to a trace file.
    let mut generator = BenchKind::PageRank.build(7, 1.0);
    TraceFile::record(&path, generator.as_mut(), 200_000)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded 200000 accesses of {} to {} ({} KiB)",
        generator.name(),
        path.display(),
        bytes / 1024
    );

    // 2. Inspect the replayed stream.
    let mut replay = TraceFile::open(&path)?;
    println!(
        "replay: {} records, VA span up to {:#x}",
        replay.len(),
        replay.footprint_bytes()
    );
    let first = replay.next_access();
    println!("first access: {} {}", first.ty, first.vaddr);

    // 3. The simulator does not care where a trace comes from: the same
    //    generator-seeded run stands in for a replay-driven run here
    //    (wire a TraceFile per (VM, core) for fully trace-driven
    //    simulation of externally captured workloads).
    let mut cfg = SimConfig::new(
        WorkloadSpec::homogeneous("pagerank", BenchKind::PageRank),
        TranslationScheme::CsaltCd,
    );
    cfg.accesses_per_core = 25_000;
    cfg.warmup_accesses_per_core = 25_000;
    cfg.system.cs_interval_cycles = 400_000; // quantum scaled with run
    let result = run(&cfg);
    println!(
        "simulated pagerank under CSALT-CD: IPC {:.4}, {} page walks",
        result.ipc(),
        result.snapshot.page_walks
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
