//! Scheme face-off: run one workload under every translation scheme the
//! paper evaluates and print a Figure 7-style comparison.
//!
//! ```sh
//! cargo run --release --example scheme_faceoff -- ccomp
//! ```
//!
//! The optional argument is any Figure 7 workload label (`canneal`,
//! `can_ccomp`, `can_stream`, `ccomp`, `graph500`, `graph500_gups`,
//! `gups`, `pagerank`, `page_stream`, `streamcluster`).

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::paper_workloads;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ccomp".into());
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}'; pick a Figure 7 label");
            std::process::exit(1);
        });

    let schemes = [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
        TranslationScheme::Dip,
        TranslationScheme::Drrip,
        TranslationScheme::Tsb,
        TranslationScheme::TsbCsalt,
        TranslationScheme::StaticPartition { data_ways: 8 },
    ];

    println!("workload: {name}\n");
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}",
        "scheme", "ipc", "vs pom-tlb", "walks", "tlb-probe$%"
    );

    let mut pom_ipc = None;
    for scheme in schemes {
        let mut cfg = SimConfig::new(workload.clone(), scheme);
        cfg.accesses_per_core = 60_000;
        cfg.warmup_accesses_per_core = 60_000;
        cfg.system.cs_interval_cycles = 400_000; // quantum scaled with run
        let r = run(&cfg);
        let ipc = r.ipc();
        if scheme == TranslationScheme::PomTlb {
            pom_ipc = Some(ipc);
        }
        let rel = pom_ipc.map(|p| ipc / p);
        println!(
            "{:<16}{:>10.4}{:>12}{:>12}{:>12}",
            scheme.label(),
            ipc,
            rel.map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".into()),
            r.snapshot.page_walks,
            r.snapshot
                .l3
                .tlb
                .hit_rate()
                .map_or_else(|| "-".into(), |v| format!("{:.1}", v * 100.0)),
        );
    }
    println!();
    println!(
        "(vs pom-tlb is computed against the POM-TLB row; conventional is \
         printed first, before the baseline, so its cell shows '-')"
    );
}
