//! Partition dynamics: watch CSALT-CD reassign cache ways between data
//! and translation entries as connected component moves through its
//! label-propagation phases — an ASCII rendition of the paper's
//! Figure 9.
//!
//! ```sh
//! cargo run --release --example partition_dynamics
//! ```

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::{BenchKind, WorkloadSpec};

fn main() {
    let mut cfg = SimConfig::new(
        WorkloadSpec::homogeneous("ccomp", BenchKind::ConnectedComponent),
        TranslationScheme::CsaltCd,
    );
    cfg.accesses_per_core = 120_000;
    cfg.warmup_accesses_per_core = 40_000;
    cfg.system.cs_interval_cycles = 400_000; // quantum scaled with run
    cfg.trace_partitions = true;

    let result = run(&cfg);

    println!("TLB way allocation over time (ccomp, CSALT-CD)\n");
    render("shared L3", &result.l3_partition_trace);
    println!();
    render("core-0 L2", &result.l2_partition_trace);
    println!();
    println!(
        "Each row is one repartitioning epoch; the bar is the fraction of \
         ways granted to translation entries. The paper's Figure 9 shows \
         the same allocation tracking the workload's iteration phases."
    );
}

/// Prints an ASCII bar chart of a partition trace.
fn render(label: &str, trace: &[(u64, f64)]) {
    println!("{label}:");
    if trace.is_empty() {
        println!("  (no epochs completed — lengthen the run)");
        return;
    }
    let max_access = trace.last().map(|&(a, _)| a).unwrap_or(1).max(1);
    // Downsample to at most 24 rows.
    let step = trace.len().div_ceil(24);
    for chunk in trace.chunks(step) {
        let (at, frac) = chunk[chunk.len() - 1];
        let mean: f64 = chunk.iter().map(|&(_, f)| f).sum::<f64>() / chunk.len() as f64;
        let width = (mean * 40.0).round() as usize;
        println!(
            "  {:>5.1}%  [{}{}] {:>4.0}% tlb",
            at as f64 / max_access as f64 * 100.0,
            "#".repeat(width),
            " ".repeat(40 - width),
            frac * 100.0
        );
    }
}
