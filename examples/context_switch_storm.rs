//! Context-switch storm: reproduce the paper's motivating observation
//! (Figure 1) for one workload — adding VM contexts multiplies the L2
//! TLB miss rate — and show how much of the resulting damage CSALT-CD
//! recovers at each pressure level (Figure 14's sensitivity).
//!
//! ```sh
//! cargo run --release --example context_switch_storm -- pagerank
//! ```

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::paper_workloads;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "pagerank".into());
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}'; pick a Figure 7 label");
            std::process::exit(1);
        });

    println!("workload: {name}\n");
    println!(
        "{:<10}{:>14}{:>16}{:>16}{:>18}",
        "contexts", "tlb mpki", "pom-tlb ipc", "csalt-cd ipc", "csalt speedup"
    );

    let mut base_mpki = None;
    for contexts in [1u32, 2, 4] {
        let mut results = Vec::new();
        for scheme in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
            let mut cfg = SimConfig::new(workload.clone(), scheme);
            cfg.system.contexts_per_core = contexts;
            cfg.system.cs_interval_cycles = 400_000; // quantum scaled with run
            cfg.accesses_per_core = 50_000;
            cfg.warmup_accesses_per_core = 50_000;
            results.push(run(&cfg));
        }
        let mpki = results[0].l2_tlb_mpki();
        let ratio = base_mpki.get_or_insert(mpki);
        println!(
            "{:<10}{:>9.1} ({:>3.1}x){:>16.4}{:>16.4}{:>17.1}%",
            contexts,
            mpki,
            mpki / *ratio,
            results[0].ipc(),
            results[1].ipc(),
            (results[1].ipc() / results[0].ipc() - 1.0) * 100.0
        );
    }
    println!();
    println!(
        "The MPKI multiplier in column 2 is the per-workload bar of the \
         paper's Figure 1; the last column is its Figure 14 trend — CSALT's \
         advantage grows as contexts pile on."
    );
}
